//! Scenario harness: assemble a waiter/signaler population, run it, check it.
//!
//! A [`Scenario`] assigns a [`Role`] to each process, builds a
//! [`SimSpec`] from a [`SignalingAlgorithm`], and [`run_scenario`] executes
//! it under any scheduler and cost model, returning the simulator together
//! with the results of the safety checks. This is the measurement frontend
//! used by the examples, the integration tests, and every experiment binary.

use crate::algorithm::SignalingAlgorithm;
use crate::kinds;
use crate::spec::{check_blocking, check_polling, SpecViolation};
use shm_sim::{
    CallSource, Chain, CostModel, Idle, MemLayout, RepeatUntil, Scheduler, Script, ScriptedCall,
    SimSpec, Simulator,
};
use std::sync::Arc;

/// What a process does in a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Calls `Poll()` until it returns true; with `max_polls`, gives up and
    /// terminates after that many unsuccessful polls — the §4 variation the
    /// lower bound exploits ("waiters can terminate after a finite number of
    /// calls to `Poll()` even if no such call returned true").
    Waiter {
        /// Give-up bound; `None` polls until success (requires a signal to
        /// terminate).
        max_polls: Option<u64>,
    },
    /// Calls `Wait()` once (blocking semantics). If the algorithm has no
    /// native `Wait()`, this synthesizes it as `Poll()` until true — the
    /// generic reduction of §7.
    BlockingWaiter,
    /// Optionally polls a few times, then calls `Signal()` once, then
    /// terminates.
    Signaler {
        /// Unsuccessful `Poll()` calls to make before signaling (0 = signal
        /// immediately when first scheduled).
        polls_first: u64,
    },
    /// Takes no steps (a processor with no process, or a process that never
    /// participates).
    Bystander,
}

impl Role {
    /// A plain waiter that polls until success.
    #[must_use]
    pub fn waiter() -> Role {
        Role::Waiter { max_polls: None }
    }

    /// A signaler that signals as soon as it is scheduled.
    #[must_use]
    pub fn signaler() -> Role {
        Role::Signaler { polls_first: 0 }
    }
}

/// A population of processes with roles, bound to an algorithm and a model.
pub struct Scenario<'a> {
    /// The algorithm under test.
    pub algorithm: &'a dyn SignalingAlgorithm,
    /// Role of each process; `roles.len()` is the number of processes.
    pub roles: Vec<Role>,
    /// Cost model to price accesses under.
    pub model: CostModel,
}

impl Scenario<'_> {
    /// Builds the executable spec: allocates shared memory and wires one
    /// call source per process according to its role.
    #[must_use]
    pub fn build(&self) -> SimSpec {
        let n = self.roles.len();
        let mut layout = MemLayout::new();
        let inst = self.algorithm.instantiate(&mut layout, n);
        let sources = self
            .roles
            .iter()
            .enumerate()
            .map(|(i, role)| {
                let pid = shm_sim::ProcId(i as u32);
                let poll = {
                    let inst = Arc::clone(&inst);
                    ScriptedCall::new(kinds::POLL, "Poll", Arc::new(move || inst.poll_call(pid)))
                };
                let signal = {
                    let inst = Arc::clone(&inst);
                    ScriptedCall::new(
                        kinds::SIGNAL,
                        "Signal",
                        Arc::new(move || inst.signal_call(pid)),
                    )
                };
                match *role {
                    Role::Waiter { max_polls } => match max_polls {
                        None => Box::new(RepeatUntil::new(poll, 1)) as Box<dyn CallSource>,
                        Some(m) => Box::new(RepeatUntil::with_max_calls(poll, 1, m)),
                    },
                    Role::BlockingWaiter => {
                        if inst.wait_call(pid).is_some() {
                            let inst = Arc::clone(&inst);
                            let wait = ScriptedCall::new(
                                kinds::WAIT,
                                "Wait",
                                Arc::new(move || inst.wait_call(pid).expect("native Wait")),
                            );
                            Box::new(Script::new(vec![wait])) as Box<dyn CallSource>
                        } else {
                            // §7's reduction: Wait() = Poll() until true.
                            Box::new(RepeatUntil::new(poll, 1))
                        }
                    }
                    Role::Signaler { polls_first } => {
                        let sig = Script::new(vec![signal]);
                        if polls_first == 0 {
                            Box::new(sig) as Box<dyn CallSource>
                        } else {
                            let pre = RepeatUntil::with_max_calls(poll, 1, polls_first);
                            Box::new(Chain::new(Box::new(pre), Box::new(sig)))
                        }
                    }
                    Role::Bystander => Box::new(Idle),
                }
            })
            .collect();
        SimSpec {
            layout,
            sources,
            model: self.model,
        }
    }
}

/// The result of running a scenario: the finished simulator plus the safety
/// verdicts of both semantics' checkers.
pub struct RunOutcome {
    /// The simulator after the run (history, stats, memory).
    pub sim: Simulator,
    /// Whether the run completed (all processes terminated within budget).
    pub completed: bool,
    /// Specification 4.1 verdict.
    pub polling_spec: Result<(), SpecViolation>,
    /// Blocking-semantics verdict.
    pub blocking_spec: Result<(), SpecViolation>,
}

/// Builds and runs a scenario under `sched` for at most `max_steps` steps,
/// then checks both safety specifications on the resulting history.
pub fn run_scenario(
    scenario: &Scenario<'_>,
    sched: &mut dyn Scheduler,
    max_steps: u64,
) -> RunOutcome {
    let spec = scenario.build();
    let mut sim = Simulator::new(&spec);
    let completed = shm_sim::run_to_completion(&mut sim, sched, max_steps);
    let polling_spec = check_polling(sim.history());
    let blocking_spec = check_blocking(sim.history());
    RunOutcome {
        sim,
        completed,
        polling_spec,
        blocking_spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::CcFlag;
    use shm_sim::{ProcId, RoundRobin, SeededRandom};

    #[test]
    fn waiters_and_signaler_complete_and_satisfy_spec() {
        let scenario = Scenario {
            algorithm: &CcFlag,
            roles: vec![Role::waiter(), Role::waiter(), Role::signaler()],
            model: CostModel::cc_default(),
        };
        let out = run_scenario(&scenario, &mut RoundRobin::new(), 100_000);
        assert!(out.completed);
        assert_eq!(out.polling_spec, Ok(()));
        assert_eq!(out.blocking_spec, Ok(()));
    }

    #[test]
    fn give_up_waiters_terminate_without_signal() {
        let scenario = Scenario {
            algorithm: &CcFlag,
            roles: vec![Role::Waiter { max_polls: Some(5) }, Role::Bystander],
            model: CostModel::Dsm,
        };
        let out = run_scenario(&scenario, &mut RoundRobin::new(), 100_000);
        assert!(out.completed);
        assert_eq!(out.polling_spec, Ok(()));
        assert_eq!(out.sim.proc_stats(ProcId(0)).calls_completed, 5);
        assert_eq!(
            out.sim.proc_stats(ProcId(1)).steps,
            1,
            "bystander only terminates"
        );
    }

    #[test]
    fn signaler_with_pre_polls() {
        let scenario = Scenario {
            algorithm: &CcFlag,
            roles: vec![Role::waiter(), Role::Signaler { polls_first: 3 }],
            model: CostModel::cc_default(),
        };
        let out = run_scenario(&scenario, &mut SeededRandom::new(5), 100_000);
        assert!(out.completed);
        assert_eq!(out.polling_spec, Ok(()));
        let sig_calls = out.sim.proc_stats(ProcId(1)).calls_completed;
        assert_eq!(sig_calls, 4, "3 polls + 1 signal");
    }

    #[test]
    fn blocking_waiter_uses_native_wait_when_available() {
        let scenario = Scenario {
            algorithm: &CcFlag,
            roles: vec![Role::BlockingWaiter, Role::signaler()],
            model: CostModel::cc_default(),
        };
        let out = run_scenario(&scenario, &mut RoundRobin::new(), 100_000);
        assert!(out.completed);
        assert_eq!(out.blocking_spec, Ok(()));
        // Native Wait appears as a WAIT call in the history.
        let kinds_seen: Vec<_> = out.sim.history().calls().iter().map(|c| c.kind).collect();
        assert!(kinds_seen.contains(&crate::kinds::WAIT));
    }
}
