//! History checkers for the signaling problem's safety properties.
//!
//! [`check_polling`] verifies Specification 4.1 of the paper; [`check_blocking`]
//! verifies the blocking-semantics contract ("`Wait()` returns only after some
//! call to `Signal()` has begun").
//!
//! Both checkers work on the simulator's typed [`History`] and judge only
//! *completed* calls, so histories with crashes or pending calls are checked
//! on their completed prefix — matching the paper's definitions, which
//! constrain return values only.

use crate::kinds;
use shm_sim::{CallRecord, History, ProcId};

/// A violation of the signaling problem's safety properties.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecViolation {
    /// A `Poll()` returned true although no `Signal()` had begun by the time
    /// the poll returned.
    TrueWithoutSignalBegun {
        /// The polling process.
        pid: ProcId,
        /// History index of the poll's return event.
        poll_returned_at: usize,
    },
    /// A `Poll()` returned false although some `Signal()` had completed
    /// before the poll began.
    FalseAfterSignalCompleted {
        /// The polling process.
        pid: ProcId,
        /// History index of the poll's invoke event.
        poll_invoked_at: usize,
        /// History index of the completed signal's return event.
        signal_returned_at: usize,
    },
    /// A `Wait()` returned although no `Signal()` had begun by the time it
    /// returned.
    WaitWithoutSignalBegun {
        /// The waiting process.
        pid: ProcId,
        /// History index of the wait's return event.
        wait_returned_at: usize,
    },
    /// A `Poll()` or `Wait()` returned a word other than 0/1 (polls) — an
    /// interface error rather than a safety error, but worth flagging.
    MalformedReturn {
        /// The offending process.
        pid: ProcId,
        /// The malformed word.
        value: shm_sim::Word,
    },
}

fn signal_calls(calls: &[CallRecord]) -> (Option<usize>, Option<usize>) {
    // (earliest Signal invoke index, earliest Signal return index)
    let mut first_begin = None;
    let mut first_complete = None;
    for c in calls.iter().filter(|c| c.kind == kinds::SIGNAL) {
        first_begin = Some(first_begin.map_or(c.invoked_at, |b: usize| b.min(c.invoked_at)));
        if let Some(r) = c.returned_at {
            first_complete = Some(first_complete.map_or(r, |b: usize| b.min(r)));
        }
    }
    (first_begin, first_complete)
}

/// Checks Specification 4.1 over a history.
///
/// # Errors
///
/// Returns the first violation found, scanning calls in invocation order.
pub fn check_polling(history: &History) -> Result<(), SpecViolation> {
    check_polling_calls(&history.calls())
}

/// [`check_polling`] over pre-reconstructed call records
/// ([`History::calls`]), so callers that need the records for several
/// checks (the explorer judges and dedup-contexts every generated state)
/// reconstruct them once.
///
/// # Errors
///
/// Returns the first violation found, scanning calls in invocation order.
pub fn check_polling_calls(calls: &[CallRecord]) -> Result<(), SpecViolation> {
    let (first_signal_begin, first_signal_complete) = signal_calls(calls);
    for c in calls.iter().filter(|c| c.kind == kinds::POLL) {
        let Some(returned_at) = c.returned_at else {
            continue;
        };
        match c.return_value {
            Some(1) => {
                // Some Signal must have begun before this poll returned.
                let begun = first_signal_begin.is_some_and(|b| b < returned_at);
                if !begun {
                    return Err(SpecViolation::TrueWithoutSignalBegun {
                        pid: c.pid,
                        poll_returned_at: returned_at,
                    });
                }
            }
            Some(0) => {
                // No Signal may have completed before this poll began.
                if let Some(sig_ret) = first_signal_complete {
                    if sig_ret < c.invoked_at {
                        return Err(SpecViolation::FalseAfterSignalCompleted {
                            pid: c.pid,
                            poll_invoked_at: c.invoked_at,
                            signal_returned_at: sig_ret,
                        });
                    }
                }
            }
            Some(v) => {
                return Err(SpecViolation::MalformedReturn {
                    pid: c.pid,
                    value: v,
                })
            }
            None => {}
        }
    }
    Ok(())
}

/// The distinct processes that act as waiters — invoke `Poll()` or `Wait()`
/// — anywhere in the history.
///
/// This is the measure algorithm participation contracts
/// ([`crate::SignalingAlgorithm::max_concurrent_waiters`]) bound: a history
/// with more waiter processes than the contract allows is *out of
/// contract*, and safety failures in it say nothing about the algorithm.
/// Since each process has at most one call open at a time, this count
/// always dominates [`peak_concurrent_waiters`], so checking it subsumes
/// the simultaneously-open-calls reading of the bound.
#[must_use]
pub fn waiter_processes(history: &History) -> std::collections::BTreeSet<ProcId> {
    history
        .events()
        .filter_map(|e| match *e {
            shm_sim::Event::Invoke { pid, kind, .. }
                if kind == kinds::POLL || kind == kinds::WAIT =>
            {
                Some(pid)
            }
            _ => None,
        })
        .collect()
}

/// The peak number of waiters with `Poll()`/`Wait()` calls open at the same
/// time anywhere in the history — the simultaneity profile complementing
/// [`waiter_processes`]. A call opens at its `Invoke` event and closes at
/// its `Return`; calls left pending (including by a crash) stay open to the
/// end of the history.
#[must_use]
pub fn peak_concurrent_waiters(history: &History) -> usize {
    let mut open = 0usize;
    let mut peak = 0usize;
    for e in history.events() {
        match *e {
            shm_sim::Event::Invoke { kind, .. } if kind == kinds::POLL || kind == kinds::WAIT => {
                open += 1;
                peak = peak.max(open);
            }
            shm_sim::Event::Return { kind, .. } if kind == kinds::POLL || kind == kinds::WAIT => {
                open = open.saturating_sub(1);
            }
            _ => {}
        }
    }
    peak
}

/// Checks the blocking-semantics contract over a history: every completed
/// `Wait()` returned after some `Signal()` began.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_blocking(history: &History) -> Result<(), SpecViolation> {
    check_blocking_calls(&history.calls())
}

/// [`check_blocking`] over pre-reconstructed call records (see
/// [`check_polling_calls`]).
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_blocking_calls(calls: &[CallRecord]) -> Result<(), SpecViolation> {
    let (first_signal_begin, _) = signal_calls(calls);
    for c in calls.iter().filter(|c| c.kind == kinds::WAIT) {
        let Some(returned_at) = c.returned_at else {
            continue;
        };
        let begun = first_signal_begin.is_some_and(|b| b < returned_at);
        if !begun {
            return Err(SpecViolation::WaitWithoutSignalBegun {
                pid: c.pid,
                wait_returned_at: returned_at,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    mod spec_sim_tests {
        use crate::kinds;
        use crate::spec::{check_blocking, check_polling, SpecViolation};
        use shm_sim::*;
        use std::sync::Arc;

        /// Builds a history by scripting explicit call sequences on a
        /// scratch simulator; each call returns a constant.
        fn scripted_history(script: &[(u32, CallKind, Word)]) -> History {
            // One process per script entry owner; each entry is one call
            // that returns `w` after a single read of a scratch cell.
            let mut layout = MemLayout::new();
            let scratch = layout.alloc_global(0);
            let n = script.iter().map(|&(p, _, _)| p + 1).max().unwrap_or(1) as usize;
            let mut per_proc: Vec<Vec<ScriptedCall>> = vec![Vec::new(); n];
            for &(p, kind, w) in script {
                per_proc[p as usize].push(ScriptedCall::new(
                    kind,
                    "scripted",
                    Arc::new(move || {
                        Box::new(ReturnAfterRead {
                            scratch,
                            value: w,
                            read_done: false,
                        })
                    }),
                ));
            }
            let sources = per_proc
                .into_iter()
                .map(|calls| Box::new(Script::new(calls)) as Box<dyn CallSource>)
                .collect();
            let spec = SimSpec {
                layout,
                sources,
                model: CostModel::Dsm,
            };
            let mut sim = Simulator::new(&spec);
            // Execute the scripted calls in the order given: each entry is
            // run to completion before the next starts (sequential history).
            for &(p, _, _) in script {
                let pid = ProcId(p);
                let _ = sim.step(pid); // invoke + read
                let _ = sim.step(pid); // return
            }
            sim.history().clone()
        }

        #[derive(Clone)]
        struct ReturnAfterRead {
            scratch: Addr,
            value: Word,
            read_done: bool,
        }
        impl ProcedureCall for ReturnAfterRead {
            fn step(&mut self, _last: Option<Word>) -> Step {
                if self.read_done {
                    Step::Return(self.value)
                } else {
                    self.read_done = true;
                    Step::Op(Op::Read(self.scratch))
                }
            }
            fn clone_call(&self) -> Box<dyn ProcedureCall> {
                Box::new(self.clone())
            }
        }

        #[test]
        fn empty_history_is_fine() {
            let h = scripted_history(&[]);
            assert_eq!(check_polling(&h), Ok(()));
            assert_eq!(check_blocking(&h), Ok(()));
        }

        #[test]
        fn poll_false_before_signal_is_fine() {
            let h = scripted_history(&[(0, kinds::POLL, 0), (1, kinds::SIGNAL, 0)]);
            assert_eq!(check_polling(&h), Ok(()));
        }

        #[test]
        fn poll_true_after_signal_is_fine() {
            let h = scripted_history(&[(1, kinds::SIGNAL, 0), (0, kinds::POLL, 1)]);
            assert_eq!(check_polling(&h), Ok(()));
        }

        #[test]
        fn poll_true_without_signal_is_violation() {
            let h = scripted_history(&[(0, kinds::POLL, 1)]);
            assert!(matches!(
                check_polling(&h),
                Err(SpecViolation::TrueWithoutSignalBegun { pid: ProcId(0), .. })
            ));
        }

        #[test]
        fn poll_false_after_completed_signal_is_violation() {
            let h = scripted_history(&[(1, kinds::SIGNAL, 0), (0, kinds::POLL, 0)]);
            assert!(matches!(
                check_polling(&h),
                Err(SpecViolation::FalseAfterSignalCompleted { pid: ProcId(0), .. })
            ));
        }

        #[test]
        fn malformed_poll_return_is_flagged() {
            let h = scripted_history(&[(1, kinds::SIGNAL, 0), (0, kinds::POLL, 7)]);
            assert!(matches!(
                check_polling(&h),
                Err(SpecViolation::MalformedReturn { value: 7, .. })
            ));
        }

        #[test]
        fn wait_after_signal_begun_is_fine() {
            let h = scripted_history(&[(1, kinds::SIGNAL, 0), (0, kinds::WAIT, 0)]);
            assert_eq!(check_blocking(&h), Ok(()));
        }

        #[test]
        fn wait_without_signal_is_violation() {
            let h = scripted_history(&[(0, kinds::WAIT, 0)]);
            assert!(matches!(
                check_blocking(&h),
                Err(SpecViolation::WaitWithoutSignalBegun { pid: ProcId(0), .. })
            ));
        }

        #[test]
        fn sequential_polls_have_peak_one() {
            use crate::spec::peak_concurrent_waiters;
            let h = scripted_history(&[
                (0, kinds::POLL, 0),
                (1, kinds::POLL, 0),
                (2, kinds::SIGNAL, 0),
                (0, kinds::POLL, 1),
            ]);
            assert_eq!(peak_concurrent_waiters(&h), 1);
            assert_eq!(peak_concurrent_waiters(&scripted_history(&[])), 0);
        }

        #[test]
        fn concurrent_polls_raise_the_peak() {
            use crate::spec::peak_concurrent_waiters;
            let mut layout = MemLayout::new();
            let scratch = layout.alloc_global(0);
            let sources = (0..3)
                .map(|_| {
                    Box::new(Script::new(vec![ScriptedCall::new(
                        kinds::POLL,
                        "poll",
                        Arc::new(move || {
                            Box::new(ReturnAfterRead {
                                scratch,
                                value: 0,
                                read_done: false,
                            }) as Box<dyn ProcedureCall>
                        }),
                    )])) as Box<dyn CallSource>
                })
                .collect();
            let spec = SimSpec {
                layout,
                sources,
                model: CostModel::Dsm,
            };
            let mut sim = Simulator::new(&spec);
            // Open all three polls before any returns: peak 3.
            for p in 0..3 {
                let _ = sim.step(ProcId(p)); // invoke + read
            }
            assert_eq!(peak_concurrent_waiters(sim.history()), 3);
            // Closing them does not lower the recorded peak.
            assert!(run_to_completion(&mut sim, &mut RoundRobin::new(), 1_000));
            assert_eq!(peak_concurrent_waiters(sim.history()), 3);
        }

        #[test]
        fn pending_poll_is_not_judged() {
            // A poll that never returns cannot violate anything.
            let mut layout = MemLayout::new();
            let scratch = layout.alloc_global(0);
            let poller = Script::new(vec![ScriptedCall::new(
                kinds::POLL,
                "poll",
                Arc::new(move || {
                    Box::new(ReturnAfterRead {
                        scratch,
                        value: 1,
                        read_done: false,
                    })
                }),
            )]);
            let spec = SimSpec {
                layout,
                sources: vec![Box::new(poller)],
                model: CostModel::Dsm,
            };
            let mut sim = Simulator::new(&spec);
            let _ = sim.step(ProcId(0)); // invoke + read, no return yet
            assert_eq!(check_polling(sim.history()), Ok(()));
        }
    }
}
