//! Call-kind constants for the signaling problem's procedures.

use shm_sim::CallKind;

/// A `Signal()` call.
pub const SIGNAL: CallKind = CallKind(100);
/// A `Poll()` call (returns 1 = true, 0 = false).
pub const POLL: CallKind = CallKind(101);
/// A `Wait()` call (returns only after some `Signal()` has begun).
pub const WAIT: CallKind = CallKind(102);
