//! Progress properties (§2), measurable.
//!
//! The paper distinguishes **wait-free** algorithms (an upper bound B on
//! the steps any procedure call takes, in *every* history) from
//! **terminating** ones (calls complete in fair crash-free histories, but
//! may busy-wait). Wait-freedom matters to the results: the §5 algorithm
//! is wait-free; the lower bound holds "even for terminating solutions"
//! (weakening 4 of the conclusion); and the Corollary 6.14 transformation
//! necessarily destroys wait-freedom.
//!
//! Wait-freedom is a ∀-histories property, so a measurement over one
//! history can only *refute* it or report a witness bound; the tests
//! combine this with adversarial schedules (a waiter parked for k steps
//! during a call shows the call taking ≥ k steps, refuting any bound < k).

use crate::kinds;
use shm_sim::{CallKind, Event, History, ProcId};
use std::collections::BTreeMap;

/// Per-call step accounting for one history.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CallSteps {
    /// Memory accesses performed within the call (including for pending
    /// calls: accesses so far).
    pub accesses: u64,
    /// Whether the call completed.
    pub completed: bool,
}

/// Counts memory accesses inside every procedure call of `kind` (all kinds
/// when `kind` is `None`), including pending calls — the paper's
/// wait-freedom clause covers "partially or fully completed" calls.
#[must_use]
pub fn call_steps(history: &History, kind: Option<CallKind>) -> Vec<(ProcId, CallSteps)> {
    let mut out: Vec<(ProcId, CallSteps)> = Vec::new();
    let mut open: BTreeMap<ProcId, usize> = BTreeMap::new();
    for e in history.events() {
        match *e {
            Event::Invoke { pid, kind: k, .. } if kind.is_none_or(|want| want == k) => {
                open.insert(pid, out.len());
                out.push((pid, CallSteps::default()));
            }
            Event::Return { pid, kind: k, .. } if kind.is_none_or(|want| want == k) => {
                if let Some(idx) = open.remove(&pid) {
                    out[idx].1.completed = true;
                }
            }
            Event::Access { pid, .. } => {
                if let Some(&idx) = open.get(&pid) {
                    out[idx].1.accesses += 1;
                }
            }
            _ => {}
        }
    }
    out
}

/// The largest number of accesses any single call of `kind` performed —
/// a witness bound for wait-freedom claims, or a refutation of one.
#[must_use]
pub fn max_accesses_per_call(history: &History, kind: Option<CallKind>) -> u64 {
    call_steps(history, kind)
        .iter()
        .map(|(_, s)| s.accesses)
        .max()
        .unwrap_or(0)
}

/// Convenience: the worst `Poll()` cost in the history.
#[must_use]
pub fn worst_poll(history: &History) -> u64 {
    max_accesses_per_call(history, Some(kinds::POLL))
}

/// Convenience: the worst `Signal()` cost in the history.
#[must_use]
pub fn worst_signal(history: &History) -> u64 {
    max_accesses_per_call(history, Some(kinds::SIGNAL))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{CcFlag, FixedWaiters, QueueSignaling};
    use crate::scenario::{Role, Scenario};
    use shm_sim::{CostModel, ProcId, RoundRobin, SeededRandom, Simulator};

    #[test]
    fn cc_flag_is_wait_free_with_bound_one() {
        // Every Poll is exactly one access, every Signal exactly one,
        // under arbitrary schedules.
        for seed in 0..20 {
            let mut roles = vec![Role::waiter(); 4];
            roles.push(Role::signaler());
            let scenario = Scenario {
                algorithm: &CcFlag,
                roles,
                model: CostModel::Dsm,
            };
            let out =
                crate::scenario::run_scenario(&scenario, &mut SeededRandom::new(seed), 1_000_000);
            assert!(out.completed);
            assert_eq!(worst_poll(out.sim.history()), 1);
            assert_eq!(worst_signal(out.sim.history()), 1);
        }
    }

    #[test]
    fn queue_polls_are_wait_free_signal_is_bounded_by_population() {
        let mut roles = vec![Role::waiter(); 8];
        roles.push(Role::signaler());
        let scenario = Scenario {
            algorithm: &QueueSignaling,
            roles,
            model: CostModel::Dsm,
        };
        let out = crate::scenario::run_scenario(&scenario, &mut SeededRandom::new(7), 1_000_000);
        assert!(out.completed);
        assert!(
            worst_poll(out.sim.history()) <= 5,
            "reg read + FAA + slot + reg write + G read"
        );
        // Signal scans at most the whole population: 2 + 2*8.
        assert!(worst_signal(out.sim.history()) <= 18);
    }

    #[test]
    fn awaiting_signal_is_not_wait_free() {
        // The terminating (awaiting) fixed-waiters variant busy-waits inside
        // Signal(): park the signaler against absent waiters and watch the
        // call's step count grow beyond any proposed bound.
        let waiters: Vec<ProcId> = vec![ProcId(0), ProcId(1)];
        let algo = FixedWaiters::awaiting(waiters, ProcId(2));
        let scenario = Scenario {
            algorithm: &algo,
            roles: vec![Role::waiter(), Role::waiter(), Role::signaler()],
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = Simulator::new(&spec);
        for _ in 0..500 {
            let _ = sim.step(ProcId(2)); // signaler spins on participation
        }
        let pending_signal = max_accesses_per_call(sim.history(), Some(crate::kinds::SIGNAL));
        assert!(pending_signal > 400, "got {pending_signal}");
        // It is terminating, though: with the waiters scheduled it finishes.
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            1_000_000
        ));
        assert_eq!(crate::spec::check_polling(sim.history()), Ok(()));
    }

    #[test]
    fn pending_calls_are_counted() {
        let scenario = Scenario {
            algorithm: &CcFlag,
            roles: vec![Role::waiter()],
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = Simulator::new(&spec);
        let _ = sim.step(ProcId(0)); // invoke + read: call pending
        let steps = call_steps(sim.history(), Some(crate::kinds::POLL));
        assert_eq!(steps.len(), 1);
        assert_eq!(
            steps[0].1,
            CallSteps {
                accesses: 1,
                completed: false
            }
        );
    }
}
