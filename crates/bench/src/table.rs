//! Minimal fixed-width table printing for experiment binaries.

/// Prints a header row and a separator.
pub fn header(cols: &[(&str, usize)]) {
    let mut line = String::new();
    for (name, width) in cols {
        line.push_str(&format!("{name:>width$}  "));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().saturating_sub(2)));
}

/// Formats one cell-aligned row from already-rendered cells.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>width$}  "));
    }
    println!("{line}");
}

/// Renders a float with two decimals.
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}
