//! Tiny shared argument helpers for the experiment binaries.
//!
//! The binaries stay dependency-free (no clap); these helpers cover the two
//! patterns they share: `--flag value` extraction and the `--threads N`
//! convention (an explicit `--threads` overrides the `CC_DSM_THREADS`
//! environment variable, which overrides available parallelism — resolution
//! lives in [`shm_pool::threads`]).

/// The value following `--<flag>`, if present.
#[must_use]
pub fn value_of(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Applies `--threads N` (if present) as the process-wide pool thread count
/// and returns the effective count.
#[must_use]
pub fn apply_threads(args: &[String]) -> usize {
    if let Some(v) = value_of(args, "--threads") {
        let n: usize = v.parse().expect("--threads takes a positive integer");
        assert!(n > 0, "--threads takes a positive integer");
        shm_pool::set_threads(n);
    }
    shm_pool::threads()
}

/// Parses a `--sizes 32,64,...` override, falling back to `default`.
#[must_use]
pub fn sizes_of(args: &[String], default: &[usize]) -> Vec<usize> {
    value_of(args, "--sizes").map_or_else(
        || default.to_vec(),
        |list| {
            list.split(',')
                .map(|s| s.trim().parse().expect("--sizes takes e.g. 32,64"))
                .collect()
        },
    )
}
