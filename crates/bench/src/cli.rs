//! Tiny shared argument helpers for the experiment binaries.
//!
//! The binaries stay dependency-free (no clap); these helpers cover the two
//! patterns they share: `--flag value` extraction and the `--threads N`
//! convention (an explicit `--threads` overrides the `CC_DSM_THREADS`
//! environment variable, which overrides available parallelism — resolution
//! lives in [`shm_pool::threads`]).

/// The value following `--<flag>`, if present.
#[must_use]
pub fn value_of(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Applies `--threads N` (if present) as the process-wide pool thread count
/// and returns the effective count.
#[must_use]
pub fn apply_threads(args: &[String]) -> usize {
    if let Some(v) = value_of(args, "--threads") {
        let n: usize = v.parse().expect("--threads takes a positive integer");
        assert!(n > 0, "--threads takes a positive integer");
        shm_pool::set_threads(n);
    }
    shm_pool::threads()
}

/// Observability outputs requested on the command line (shared by every
/// `exp_*` binary): `--metrics out.json` (deterministic counter report),
/// `--trace-jsonl out.jsonl` (event stream), `--trace-chrome out.json`
/// (Chrome `trace_event` timeline), `--obs-summary` (counter totals on
/// stdout), and `--trace-wall` (adds wall-clock timestamps, lanes, and
/// scheduling-dependent counters to the JSONL stream, giving up its
/// byte-determinism).
#[derive(Clone, Debug, Default)]
pub struct ObsFlags {
    /// `--metrics <path>`: write the deterministic metrics JSON.
    pub metrics: Option<String>,
    /// `--trace-chrome <path>`: write a Chrome/Perfetto trace.
    pub trace_chrome: Option<String>,
    /// `--trace-jsonl <path>`: write the JSONL event stream.
    pub trace_jsonl: Option<String>,
    /// `--obs-summary`: print deterministic counter totals on stdout.
    pub summary: bool,
    /// `--trace-wall`: include timestamps/lanes/nondeterministic counters
    /// in the JSONL stream.
    pub wall: bool,
}

impl ObsFlags {
    /// Whether any observability output was requested (i.e. whether a
    /// recorder needs to be installed at all).
    #[must_use]
    pub fn any(&self) -> bool {
        self.metrics.is_some()
            || self.trace_chrome.is_some()
            || self.trace_jsonl.is_some()
            || self.summary
    }
}

/// Parses the shared observability flags.
#[must_use]
pub fn obs_flags(args: &[String]) -> ObsFlags {
    ObsFlags {
        metrics: value_of(args, "--metrics"),
        trace_chrome: value_of(args, "--trace-chrome"),
        trace_jsonl: value_of(args, "--trace-jsonl"),
        summary: args.iter().any(|a| a == "--obs-summary"),
        wall: args.iter().any(|a| a == "--trace-wall"),
    }
}

/// Installs an `shm-obs` collector when any observability output was
/// requested; recording stays zero-cost-disabled otherwise.
#[must_use]
pub fn obs_install(flags: &ObsFlags) -> Option<std::sync::Arc<shm_obs::Collector>> {
    flags.any().then(|| {
        let c = shm_obs::Collector::new();
        shm_obs::install_collector(&c);
        c
    })
}

/// Writes the requested sinks from the collector installed by
/// [`obs_install`] and uninstalls the recorder. No-op when `collector` is
/// `None`.
pub fn obs_finish(flags: &ObsFlags, collector: Option<&std::sync::Arc<shm_obs::Collector>>) {
    let Some(c) = collector else { return };
    shm_obs::uninstall();
    let snap = c.snapshot();
    if let Some(path) = &flags.metrics {
        let report = shm_obs::MetricsReport::from_snapshot(&snap);
        std::fs::write(path, report.to_json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
    if let Some(path) = &flags.trace_jsonl {
        std::fs::write(path, shm_obs::jsonl(&snap, flags.wall))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
    if let Some(path) = &flags.trace_chrome {
        std::fs::write(path, shm_obs::chrome_trace(&snap))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
    if flags.summary {
        let report = shm_obs::MetricsReport::from_snapshot(&snap);
        println!("\nobs summary (deterministic counter totals):");
        for name in report.names() {
            println!("  {:<24} {}", name, report.total(name));
        }
    }
}

/// Parses a byte quantity with an optional `k`/`m`/`g` suffix (binary
/// units): `65536`, `64k`, `512m`, `1g`.
#[must_use]
pub fn parse_bytes(s: &str) -> usize {
    let t = s.trim().to_ascii_lowercase();
    let (digits, mult) = match t.as_bytes().last() {
        Some(b'k') => (&t[..t.len() - 1], 1usize << 10),
        Some(b'm') => (&t[..t.len() - 1], 1 << 20),
        Some(b'g') => (&t[..t.len() - 1], 1 << 30),
        _ => (t.as_str(), 1),
    };
    let n: usize = digits
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("byte quantity takes e.g. 65536, 64k, 512m, 1g (got {s:?})"));
    n.checked_mul(mult).expect("byte quantity overflows usize")
}

/// Parses `--mem-budget <bytes>` (`k`/`m`/`g` suffixes accepted): the
/// exploration memory budget forwarded to the explorer's
/// `Bounds::mem_budget` (visited hot tier + frontier ring; spills
/// delta-compressed runs to disk beyond it). Absent = unbounded.
#[must_use]
pub fn mem_budget_of(args: &[String]) -> Option<usize> {
    value_of(args, "--mem-budget").map(|v| parse_bytes(&v))
}

/// Parses a `--sizes 32,64,...` override, falling back to `default`.
#[must_use]
pub fn sizes_of(args: &[String], default: &[usize]) -> Vec<usize> {
    value_of(args, "--sizes").map_or_else(
        || default.to_vec(),
        |list| {
            list.split(',')
                .map(|s| s.trim().parse().expect("--sizes takes e.g. 32,64"))
                .collect()
        },
    )
}
