//! States-per-second of the exhaustive explorer on a fixed E9-sized
//! workload, with and without a forcing memory budget.
//!
//! The workload is the largest state space in the E9 sweep: `SingleWaiter`
//! under DSM at 2 waiters (max 2 polls) + 1 signaler (1 pre-poll) —
//! a fixed, deterministic number of explored states per run. Four cases:
//! serial and threaded, each unbudgeted (all-RAM visited set + frontier)
//! and under a 64 KiB budget that forces the visited store to spill
//! delta-compressed runs to disk and the frontier to pack nodes out. The
//! ratio of budgeted to unbudgeted states/sec is the spill tax — the price
//! of exploring a space that does not fit in memory.
//!
//! Run with: `cargo run --release -p bench --bin bench_explore_throughput`
//!
//! `--threads N` sets the pool size for the threaded cases. `--json FILE`
//! writes one JSON object — the entry `exp_all --json` embeds into
//! BENCH_experiments.json so the explorer-throughput trajectory (and the
//! spill tax) is tracked across PRs.

use bench::cli;
use bench::timing::{bench, report};
use shm_explore::{check, Bounds, ScenarioSpec};
use shm_sim::CostModel;
use signaling::algorithms::SingleWaiter;

/// Fixed workload shape: the E9 sweep's biggest space.
const WAITERS: usize = 2;
const MAX_POLLS: u64 = 2;
/// The forcing budget: far below the workload's ~1.7 MB unbudgeted peak,
/// so both the visited runs and the frontier ring must spill.
const BUDGET: usize = 64 * 1024;
/// Measured iterations per case.
const ITERS: u32 = 5;

fn run_once(mem_budget: Option<usize>) -> u64 {
    let algo = SingleWaiter;
    let scenario = ScenarioSpec {
        algorithm: &algo,
        waiters: WAITERS,
        max_polls: MAX_POLLS,
        signaler_polls_first: 1,
        model: CostModel::Dsm,
        seed: None,
    };
    let bounds = Bounds {
        mem_budget,
        ..Bounds::exhaustive()
    };
    let out = check(&scenario, &bounds);
    assert!(out.report.exhaustive, "workload must explore exhaustively");
    if mem_budget.is_some() {
        assert!(out.report.spilled_bytes > 0, "budget must force spilling");
    }
    out.report.explored
}

/// Benches one (threads, budget) case; returns (explored, states/sec,
/// median wall ms).
fn case(label: &str, threads: usize, mem_budget: Option<usize>) -> (u64, f64, f64) {
    shm_pool::set_threads(threads);
    let explored = run_once(mem_budget);
    let r = bench(&format!("explore_throughput/{label}"), ITERS, || {
        assert_eq!(
            run_once(mem_budget),
            explored,
            "explored count must be deterministic"
        );
    });
    report(&r);
    let sps = explored as f64 / (r.median_ms / 1e3);
    println!("{label}: {explored} states/iter, {sps:.0} states/sec (median)\n");
    (explored, sps, r.median_ms)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli::apply_threads(&args);

    let (explored, serial_sps, serial_ms) = case("serial/unbudgeted", 1, None);
    let (_, serial_spill_sps, _) = case("serial/64k-budget", 1, Some(BUDGET));
    let (_, threaded_sps, _) = case("threaded/unbudgeted", threads, None);
    let (_, threaded_spill_sps, _) = case("threaded/64k-budget", threads, Some(BUDGET));

    println!(
        "spill tax: serial {:.1}%, threaded {:.1}% (states/sec lost to a {BUDGET}-byte budget)",
        (1.0 - serial_spill_sps / serial_sps) * 100.0,
        (1.0 - threaded_spill_sps / threaded_sps) * 100.0,
    );

    if let Some(path) = cli::value_of(&args, "--json") {
        let json = format!(
            concat!(
                "{{\"experiment\": \"bench_explore_throughput\", \"iters\": {}, ",
                "\"wall_ms\": {:.3}, ",
                "\"states_per_iter\": {}, \"mem_budget_bytes\": {}, ",
                "\"serial_states_per_sec\": {:.0}, ",
                "\"serial_spill_states_per_sec\": {:.0}, \"threads\": {}, ",
                "\"threaded_states_per_sec\": {:.0}, ",
                "\"threaded_spill_states_per_sec\": {:.0}}}"
            ),
            ITERS,
            serial_ms,
            explored,
            BUDGET,
            serial_sps,
            serial_spill_sps,
            threads,
            threaded_sps,
            threaded_spill_sps,
        );
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}
