//! E1 — §5 upper bound: O(1) RMRs per process in the CC model.
//!
//! Run with: `cargo run --release -p bench --bin exp_e1_cc_upper`

use bench::e1_cc_upper;
use bench::table::{header, row};

fn main() {
    println!("E1: the single-Boolean algorithm (§5), waiters poll 25x before the signal\n");
    let widths = [18, 10, 8, 18, 12];
    header(&[
        ("model", 18),
        ("waiters", 10),
        ("polls", 8),
        ("max RMR/process", 18),
        ("total RMRs", 12),
    ]);
    for r in e1_cc_upper(&[4, 16, 64, 256], 25) {
        row(
            &[
                r.model.into(),
                r.n_waiters.to_string(),
                r.polls.to_string(),
                r.max_rmrs_per_proc.to_string(),
                r.total_rmrs.to_string(),
            ],
            &widths,
        );
    }
    println!("\npaper: O(1) RMRs/process, wait-free, reads+writes, O(1) space (CC).");
    println!("shape check: CC rows stay at <= 3 RMRs/process for every N; the DSM rows");
    println!("grow linearly with the poll count — the gap the rest of the paper makes rigorous.");
}
