//! E1 — §5 upper bound: O(1) RMRs per process in the CC model.
//!
//! Run with: `cargo run --release -p bench --bin exp_e1_cc_upper`
//!
//! Pass `--threads N` to set the pool size (1 = exact serial path) and
//! `--canon FILE` to write the canonical row JSON for byte-equality
//! determinism checks. Observability: `--metrics` / `--trace-chrome` /
//! `--trace-jsonl` / `--obs-summary` / `--trace-wall` (see
//! [`bench::cli::ObsFlags`]).

use bench::table::{header, row};
use bench::{canon, cli, e1_cc_upper};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let _threads = cli::apply_threads(&args);
    let canon_path = cli::value_of(&args, "--canon");
    let obs = cli::obs_flags(&args);
    let obs_col = cli::obs_install(&obs);
    println!("E1: the single-Boolean algorithm (§5), waiters poll 25x before the signal\n");
    let widths = [18, 10, 8, 18, 12];
    header(&[
        ("model", 18),
        ("waiters", 10),
        ("polls", 8),
        ("max RMR/process", 18),
        ("total RMRs", 12),
    ]);
    let rows = e1_cc_upper(&[4, 16, 64, 256], 25);
    for r in &rows {
        row(
            &[
                r.model.into(),
                r.n_waiters.to_string(),
                r.polls.to_string(),
                r.max_rmrs_per_proc.to_string(),
                r.total_rmrs.to_string(),
            ],
            &widths,
        );
    }
    if let Some(path) = canon_path {
        std::fs::write(&path, canon::e1_json(&rows))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote {path}");
    }
    cli::obs_finish(&obs, obs_col.as_ref());
    println!("\npaper: O(1) RMRs/process, wait-free, reads+writes, O(1) space (CC).");
    println!("shape check: CC rows stay at <= 3 RMRs/process for every N; the DSM rows");
    println!("grow linearly with the poll count — the gap the rest of the paper makes rigorous.");
}
