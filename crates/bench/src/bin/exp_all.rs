//! Runs every experiment (E1–E10) in sequence — the one-command regeneration
//! of `EXPERIMENTS.md`'s tables.
//!
//! Run with: `cargo run --release -p bench --bin exp_all`
//!
//! Pass `--threads N` to set every child's pool size (exported as
//! `CC_DSM_THREADS`; 1 = exact serial path). Pass `--json` to write
//! per-experiment wall times to `BENCH_experiments.json` — the repo's
//! wall-time trajectory — plus the `bench_step_throughput` steps/sec and
//! `bench_explore_throughput` states/sec entries (`total_wall_ms` still
//! sums E1–E10 only; the microbenches ride along as extra rows). Pass `--canon-dir DIR` to have E1/E2/E5/E6/E8/E9/E10
//! write canonical (timing-free) row JSON into `DIR` for byte-equality
//! determinism diffs between thread counts. Pass `--obs-dir DIR` to have
//! every child write `DIR/<bin>.metrics.json` and `DIR/<bin>.trace.json`
//! (its deterministic metrics report and Chrome trace); `--obs-summary`
//! and `--trace-wall` are forwarded to every child as-is.

use bench::cli;
use std::process::Command;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let threads = cli::value_of(&args, "--threads");
    let canon_dir = cli::value_of(&args, "--canon-dir");
    let obs_dir = cli::value_of(&args, "--obs-dir");
    for dir in canon_dir.iter().chain(&obs_dir) {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("create {dir}: {e}"));
    }
    let bins = [
        "exp_e1_cc_upper",
        "exp_e2_dsm_lower",
        "exp_e3_variants",
        "exp_e4_primitives",
        "exp_e5_messages",
        "exp_e6_mutex",
        "exp_e7_fixed_w",
        "exp_e8_transformation",
        "exp_e9_explore",
        "exp_e10_pct",
    ];
    // Which binaries accept --canon, and the canonical file each writes.
    let canon_name = |bin: &str| match bin {
        "exp_e1_cc_upper" => Some("e1.json"),
        "exp_e2_dsm_lower" => Some("e2.json"),
        "exp_e5_messages" => Some("e5.json"),
        "exp_e6_mutex" => Some("e6.json"),
        "exp_e8_transformation" => Some("e8.json"),
        "exp_e9_explore" => Some("e9.json"),
        "exp_e10_pct" => Some("e10.json"),
        _ => None,
    };
    // When invoked via cargo, sibling binaries sit next to us.
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("bin dir");
    let mut walls: Vec<(&str, f64)> = Vec::new();
    for bin in bins {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================\n");
        let mut cmd = Command::new(dir.join(bin));
        if let Some(t) = &threads {
            cmd.env("CC_DSM_THREADS", t);
        }
        if let (Some(cdir), Some(name)) = (&canon_dir, canon_name(bin)) {
            cmd.arg("--canon").arg(format!("{cdir}/{name}"));
        }
        if let Some(odir) = &obs_dir {
            cmd.arg("--metrics")
                .arg(format!("{odir}/{bin}.metrics.json"));
            cmd.arg("--trace-chrome")
                .arg(format!("{odir}/{bin}.trace.json"));
            for flag in ["--obs-summary", "--trace-wall"] {
                if args.iter().any(|a| a == flag) {
                    cmd.arg(flag);
                }
            }
        }
        let t = Instant::now();
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(status.success(), "{bin} failed");
        walls.push((bin, wall_ms));
    }
    if json {
        // The microbenches ride along: the step-throughput steps/sec and
        // explore-throughput states/sec entries are spliced into the
        // experiments array so the simulator hot-loop and explorer (+ spill
        // tax) trajectories are tracked PR-over-PR next to the wall times,
        // but they are excluded from `total_wall_ms` (that figure is the
        // E1–E10 suite).
        let bench_entries: Vec<String> = ["bench_step_throughput", "bench_explore_throughput"]
            .iter()
            .map(|bin| {
                let tmp = std::env::temp_dir().join(format!("{bin}.json"));
                let mut cmd = Command::new(dir.join(bin));
                if let Some(t) = &threads {
                    cmd.env("CC_DSM_THREADS", t);
                }
                cmd.arg("--json").arg(&tmp);
                let status = cmd
                    .status()
                    .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
                assert!(status.success(), "{bin} failed");
                std::fs::read_to_string(&tmp)
                    .unwrap_or_else(|e| panic!("read {bin} json: {e}"))
                    .trim()
                    .to_string()
            })
            .collect();

        let threads_json = threads.unwrap_or_else(|| shm_pool::threads().to_string());
        let total: f64 = walls.iter().map(|(_, w)| w).sum();
        let mut out = format!("{{\"threads\": {threads_json}, \"experiments\": [\n");
        for (bin, wall_ms) in &walls {
            out.push_str(&format!(
                "  {{\"experiment\": \"{bin}\", \"iters\": 1, \"wall_ms\": {wall_ms:.3}}},\n",
            ));
        }
        let n = bench_entries.len();
        for (i, entry) in bench_entries.iter().enumerate() {
            out.push_str(&format!("  {entry}{}\n", if i + 1 < n { "," } else { "" }));
        }
        out.push_str(&format!("], \"total_wall_ms\": {total:.3}}}\n"));
        let path = "BENCH_experiments.json";
        std::fs::write(path, out).expect("write BENCH_experiments.json");
        println!("\nwrote {path}");
    }
}
