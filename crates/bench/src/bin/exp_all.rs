//! Runs every experiment (E1–E8) in sequence — the one-command regeneration
//! of `EXPERIMENTS.md`'s tables.
//!
//! Run with: `cargo run --release -p bench --bin exp_all`

use std::process::Command;

fn main() {
    let bins = [
        "exp_e1_cc_upper",
        "exp_e2_dsm_lower",
        "exp_e3_variants",
        "exp_e4_primitives",
        "exp_e5_messages",
        "exp_e6_mutex",
        "exp_e7_fixed_w",
        "exp_e8_transformation",
    ];
    // When invoked via cargo, sibling binaries sit next to us.
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
