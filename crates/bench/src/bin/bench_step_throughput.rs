//! Steps-per-second of the simulator hot loop on a fixed E2-style workload.
//!
//! The workload is the population shape E2's adversary drives, scaled to a
//! deterministic step count: `Broadcast` signaling under the DSM model, 64
//! waiters each polling up to 192 times, and one signaler that makes 192
//! unsuccessful polls before signaling — so the waiters spin for the whole
//! measured window, exactly the §6 wild-goose-chase pattern. The schedule
//! is round-robin, so the step count is fixed across runs and machines and
//! `steps/sec = steps / wall` tracks the per-step cost of the engine alone.
//!
//! Run with: `cargo run --release -p bench --bin bench_step_throughput`
//!
//! `--threads N` sets the pool size for the threaded case (which runs
//! `2 × threads` independent copies through the work-stealing pool and
//! reports aggregate steps/sec). `--json FILE` writes one JSON object —
//! the entry `exp_all --json` embeds into BENCH_experiments.json so the
//! steps/sec trajectory is tracked across PRs.

use bench::cli;
use bench::timing::{bench, report};
use shm_sim::{CostModel, RoundRobin, Simulator};
use signaling::algorithms::Broadcast;
use signaling::{Role, Scenario};
use std::time::Instant;

/// Fixed workload shape: waiters spin while the signaler stalls.
const WAITERS: usize = 64;
const POLLS: u64 = 192;
/// Measured iterations of the serial case.
const ITERS: u32 = 10;
/// Independent copies per pool thread in the threaded case.
const COPIES_PER_THREAD: usize = 2;

fn run_once() -> u64 {
    let mut roles = vec![
        Role::Waiter {
            max_polls: Some(POLLS),
        };
        WAITERS
    ];
    roles.push(Role::Signaler { polls_first: POLLS });
    let scenario = Scenario {
        algorithm: &Broadcast,
        roles,
        model: CostModel::Dsm,
    };
    let spec = scenario.build();
    let mut sim = Simulator::new(&spec);
    let mut sched = RoundRobin::new();
    let steps = shm_sim::run(&mut sim, &mut sched, u64::MAX);
    assert!(sim.all_done(), "workload must run to completion");
    steps
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli::apply_threads(&args);

    // Serial: one simulator, fixed deterministic step count.
    let steps = run_once();
    let r = bench(&format!("step_throughput/serial/{WAITERS}w"), ITERS, || {
        assert_eq!(run_once(), steps, "step count must be deterministic");
    });
    report(&r);
    let serial_sps = steps as f64 / (r.median_ms / 1e3);
    println!("serial:   {steps} steps/iter, {serial_sps:.0} steps/sec (median)");

    // Threaded: independent copies across the pool, aggregate steps/sec.
    let copies = threads * COPIES_PER_THREAD;
    let jobs: Vec<usize> = (0..copies).collect();
    let t = Instant::now();
    let per_copy = bench::pool::map_indexed(threads, jobs, |_, _| run_once());
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let total_steps: u64 = per_copy.iter().sum();
    let threaded_sps = total_steps as f64 / (wall_ms / 1e3);
    println!(
        "threaded: {copies} copies on {threads} threads, {total_steps} steps \
         in {wall_ms:.3} ms, {threaded_sps:.0} steps/sec"
    );

    if let Some(path) = cli::value_of(&args, "--json") {
        let json = format!(
            concat!(
                "{{\"experiment\": \"bench_step_throughput\", \"iters\": {}, ",
                "\"wall_ms\": {:.3}, \"steps_per_iter\": {}, ",
                "\"serial_steps_per_sec\": {:.0}, \"threads\": {}, ",
                "\"threaded_steps_per_sec\": {:.0}}}"
            ),
            ITERS, r.median_ms, steps, serial_sps, threads, threaded_sps,
        );
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}
