//! E7 — Ω(W) signaler cost for fixed, fully participating waiters (§7).
//!
//! Run with: `cargo run --release -p bench --bin exp_e7_fixed_w`
//!
//! Pass `--threads N` to set the pool size (1 = exact serial path).
//! Observability: `--metrics` / `--trace-chrome` / `--trace-jsonl` /
//! `--obs-summary` / `--trace-wall` (see [`bench::cli::ObsFlags`]).

use bench::table::{f2, header, row};
use bench::{cli, e7_fixed_w};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let _threads = cli::apply_threads(&args);
    let obs = cli::obs_flags(&args);
    let obs_col = cli::obs_install(&obs);
    println!("E7: solo Signal() cost with all W fixed waiters stable and registered\n");
    let widths = [24, 6, 14, 10];
    header(&[
        ("algorithm", 24),
        ("W", 6),
        ("signalerRMRs", 14),
        ("amortized", 10),
    ]);
    for r in e7_fixed_w(&[4, 8, 16, 32, 64, 128]) {
        row(
            &[
                r.algorithm.clone(),
                r.w.to_string(),
                r.signaler_rmrs.to_string(),
                f2(r.amortized),
            ],
            &widths,
        );
    }
    cli::obs_finish(&obs, obs_col.as_ref());
    println!("\npaper (§7): 'in the worst case the signaler must perform Ω(W) RMRs if all");
    println!("W waiters participate by the time Signal() is called' — skipping a waiter");
    println!("would let its next Poll() incorrectly return false. shape check: every");
    println!("algorithm's signaler column scales linearly in W (slope 1 for the flag");
    println!("arrays, 2 for the queue's read+write per waiter); amortized stays O(1)");
    println!("because all W waiters participate.");
}
