//! E10 — seeded PCT exploration at adversary scale: randomized priority
//! schedules over the shipped signaling algorithms (and the seeded-buggy
//! negative controls) at n = 8, 16, 32 — sizes far beyond exhaustive reach —
//! under both cost models, judged by the Specification 4.1 oracle with E9's
//! shrink → audit counterexample pipeline.
//!
//! Run with: `cargo run --release -p bench --bin exp_e10_pct`
//!
//! Pass `--threads N` to set the pool size (1 = exact serial path),
//! `--sizes 8,16,32` to override the waiter counts, `--seed N` to override
//! the base sampling seed, and `--canon FILE` to write the canonical row
//! JSON for byte-equality determinism checks. `--mem-budget BYTES`
//! (`64k`/`512m`/`1g` accepted) caps the end-state fingerprint coverage
//! set; beyond it keys spill to delta-compressed disk runs with every
//! verdict and count unchanged. Observability: `--metrics` /
//! `--trace-chrome` / `--trace-jsonl` / `--obs-summary` / `--trace-wall`
//! (see [`bench::cli::ObsFlags`]).
//!
//! Exits nonzero when the sampling refutes the repo's claims: an
//! in-contract Specification 4.1 violation in a shipped algorithm, a missed
//! seeded-buggy violation (the negative control PCT must catch), or a
//! counterexample that fails audit re-validation. Sampling is never
//! exhaustive, so — unlike E9 — a clean row means "no violation within the
//! documented budget", not absence of one.

use bench::table::{header, row};
use bench::{canon, cli, e10_pct_with, E10_DEPTH_D, E10_SCHEDULES, E10_STEPS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let _threads = cli::apply_threads(&args);
    let canon_path = cli::value_of(&args, "--canon");
    let sizes = cli::sizes_of(&args, &[8, 16, 32]);
    let pct_seed =
        cli::value_of(&args, "--seed").map_or(0xE10, |v| v.parse().expect("--seed takes a u64"));
    let mem_budget = cli::mem_budget_of(&args);
    let obs = cli::obs_flags(&args);
    let obs_col = cli::obs_install(&obs);
    println!(
        "E10: seeded PCT exploration, {E10_SCHEDULES} schedules/row at depth d={E10_DEPTH_D} \
         ({} change points), {E10_STEPS}-step budget, base seed {pct_seed:#x}\n",
        E10_DEPTH_D - 1
    );
    let widths = [15, 5, 4, 9, 12, 12, 12, 11];
    header(&[
        ("algorithm", 15),
        ("model", 5),
        ("n", 4),
        ("terminals", 9),
        ("distinct fp", 12),
        ("violations", 12),
        ("in-contract", 12),
        ("max sig RMR", 11),
    ]);
    let rows = e10_pct_with(&sizes, 2, pct_seed, mem_budget);
    for r in &rows {
        row(
            &[
                r.algorithm.clone(),
                r.model.into(),
                r.n.to_string(),
                r.terminals.to_string(),
                r.distinct_fingerprints.to_string(),
                r.violations_found.to_string(),
                r.violations_in_contract.to_string(),
                r.max_signaler_rmrs.to_string(),
            ],
            &widths,
        );
    }
    if let Some(path) = canon_path {
        std::fs::write(&path, canon::e10_json(&rows))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote {path}");
    }
    cli::obs_finish(&obs, obs_col.as_ref());
    let mut failures = Vec::new();
    for r in &rows {
        if r.algorithm == "seeded-buggy" {
            if r.violations_in_contract == 0 {
                failures.push(format!(
                    "{} seed {:?} ({}, n={}): negative control not caught within {} schedules",
                    r.algorithm, r.seed, r.model, r.n, r.schedules
                ));
            } else if let Some(cx) = &r.counterexample {
                println!(
                    "\n{} seed {:?} ({}, n={}) counterexample: {cx}",
                    r.algorithm, r.seed, r.model, r.n
                );
                if !cx.contains("\"audit_clean\":true") {
                    failures.push(format!(
                        "{} seed {:?} ({}, n={}): shrunk counterexample failed audit",
                        r.algorithm, r.seed, r.model, r.n
                    ));
                }
            }
        } else if r.violations_in_contract > 0 {
            failures.push(format!(
                "{} ({}, n={}): {} in-contract spec violation(s): {}",
                r.algorithm,
                r.model,
                r.n,
                r.violations_in_contract,
                r.counterexample.as_deref().unwrap_or("<no counterexample>")
            ));
        }
    }
    println!("\npaper tie-in: the §6 lower-bound sweeps run at n = 8..32, far beyond");
    println!("E9's exhaustive reach. PCT samples priority schedules with a known");
    println!("guarantee (>= 1/(n*k^(d-1)) per d-deep bug), so every seeded fault the");
    println!("controls plant must surface within the documented budget; shipped");
    println!("algorithms must stay clean under the same sampling pressure.");
    if !failures.is_empty() {
        eprintln!("\nE10 FAILURES:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
