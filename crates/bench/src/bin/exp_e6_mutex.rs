//! E6 — the classical mutual-exclusion RMR landscape (§3/§8 context).
//!
//! Run with: `cargo run --release -p bench --bin exp_e6_mutex`
//!
//! Pass `--threads N` to set the pool size (1 = exact serial path) and
//! `--canon FILE` to write the canonical row JSON for byte-equality
//! determinism checks. Observability: `--metrics` / `--trace-chrome` /
//! `--trace-jsonl` / `--obs-summary` / `--trace-wall` (see
//! [`bench::cli::ObsFlags`]).

use bench::table::{f2, header, row};
use bench::{canon, cli, e6_mutex};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let _threads = cli::apply_threads(&args);
    let canon_path = cli::value_of(&args, "--canon");
    let obs = cli::obs_flags(&args);
    let obs_col = cli::obs_install(&obs);
    println!("E6: RMRs per lock passage, contended workload, seed 42\n");
    let widths = [12, 5, 6, 16];
    header(&[("lock", 12), ("model", 5), ("N", 6), ("RMRs/passage", 16)]);
    let rows = e6_mutex(&[2, 4, 8, 16, 32], 4);
    for r in &rows {
        row(
            &[
                r.lock.clone(),
                r.model.into(),
                r.n.to_string(),
                f2(r.rmrs_per_passage),
            ],
            &widths,
        );
    }
    if let Some(path) = canon_path {
        std::fs::write(&path, canon::e6_json(&rows))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote {path}");
    }
    cli::obs_finish(&obs, obs_col.as_ref());
    println!("\npaper context (§3): reads/writes mutual exclusion is Θ(log N) in BOTH");
    println!("models (tournament); with RMW primitives it is O(1) in both (MCS);");
    println!("Anderson's array lock is O(1) in CC only; TAS/TTAS are unbounded under");
    println!("contention. shape check: mcs flat, tournament grows ~log N identically in");
    println!("cc and dsm (no separation for mutual exclusion — the paper needs the");
    println!("signaling problem to separate the models).");
}
