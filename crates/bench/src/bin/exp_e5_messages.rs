//! E5 — §8: RMRs vs interconnect messages under three coherence fabrics.
//!
//! Run with: `cargo run --release -p bench --bin exp_e5_messages`
//!
//! Pass `--threads N` to set the pool size (1 = exact serial path) and
//! `--canon FILE` to write the canonical row JSON for byte-equality
//! determinism checks. Observability: `--metrics` / `--trace-chrome` /
//! `--trace-jsonl` / `--obs-summary` / `--trace-wall` (see
//! [`bench::cli::ObsFlags`]).

use bench::table::{f2, header, row};
use bench::{canon, cli, e5_messages};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let _threads = cli::apply_threads(&args);
    let canon_path = cli::value_of(&args, "--canon");
    let obs = cli::obs_flags(&args);
    let obs_col = cli::obs_install(&obs);
    println!("E5: message accounting (CC write-through), 16 processes\n");
    let widths = [20, 20, 10, 10, 14, 9];
    header(&[
        ("workload", 20),
        ("interconnect", 20),
        ("RMRs", 10),
        ("messages", 10),
        ("invalidations", 14),
        ("msg/RMR", 9),
    ]);
    let rows = e5_messages(16);
    for r in &rows {
        row(
            &[
                r.workload.into(),
                r.interconnect.into(),
                r.rmrs.to_string(),
                r.messages.to_string(),
                r.invalidations.to_string(),
                f2(r.messages_per_rmr),
            ],
            &widths,
        );
    }
    if let Some(path) = canon_path {
        std::fs::write(&path, canon::e5_json(&rows))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote {path}");
    }
    cli::obs_finish(&obs, obs_col.as_ref());
    println!("\npaper (§8): on a bus, CC RMRs are 'at par' with DSM RMRs (1 msg/RMR);");
    println!("an ideal directory sends one invalidation per destroyed copy, and the");
    println!("total number of invalidations is bounded by the number of RMRs (a cached");
    println!("copy is created by an RMR and destroyed at most once); a stateless");
    println!("broadcast fabric sends superfluous invalidations, so messages/RMR inflates");
    println!("with N and amortized RMRs can understate amortized messages.");
}
