//! E2 — Theorem 6.2: the executable lower-bound adversary in the DSM model.
//!
//! Run with: `cargo run --release -p bench --bin exp_e2_dsm_lower`
//!
//! Pass `--json` to also write the rows (including per-phase wall-clock
//! timings of the incremental replay engine) to `BENCH_adversary.json`.
//! Pass `--audit` to shadow-execute every phase's final history under naive
//! reference implementations of all four cost models and diff it against
//! the incremental path; the process exits nonzero on any divergence or
//! in-contract safety violation. Pass `--sizes 32,64` to override the
//! default population sizes.

use bench::table::{f2, header, row};
use bench::{e2_dsm_lower_with, E2Row};

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn to_json(rows: &[E2Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let audit_clean = r
            .audit_clean
            .map_or_else(|| "null".to_string(), |c| c.to_string());
        // The divergence is already a JSON object; embed it verbatim.
        let audit_divergence = r.audit_divergence.clone().unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            concat!(
                "  {{\"algorithm\": \"{}\", \"n\": {}, \"stabilized\": {}, ",
                "\"stable\": {}, \"chase_signaler_rmrs\": {}, \"chase_erased\": {}, ",
                "\"blocked\": {}, \"amortized\": {:.4}, \"violation\": {}, ",
                "\"out_of_contract\": {}, \"audit_clean\": {}, \"audit_divergence\": {}, ",
                "\"record_ms\": {:.3}, \"rounds_ms\": {:.3}, \"chase_ms\": {:.3}, ",
                "\"discovery_ms\": {:.3}, \"total_ms\": {:.3}}}{}"
            ),
            json_escape(&r.algorithm),
            r.n,
            r.stabilized,
            r.stable,
            r.chase_signaler_rmrs,
            r.chase_erased,
            r.blocked,
            r.amortized,
            r.violation,
            r.out_of_contract,
            audit_clean,
            audit_divergence,
            r.timings.record_ms,
            r.timings.rounds_ms,
            r.timings.chase_ms,
            r.timings.discovery_ms,
            r.timings.total_ms(),
            if i + 1 < rows.len() { ",\n" } else { "\n" },
        ));
    }
    out.push_str("]\n");
    out
}

fn parse_sizes(args: &[String]) -> Vec<usize> {
    args.iter()
        .position(|a| a == "--sizes")
        .and_then(|i| args.get(i + 1))
        .map_or_else(
            || vec![32, 64, 128, 256],
            |list| {
                list.split(',')
                    .map(|s| s.trim().parse().expect("--sizes takes e.g. 32,64"))
                    .collect()
            },
        )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let audit = args.iter().any(|a| a == "--audit");
    let sizes = parse_sizes(&args);
    println!("E2: the §6 adversary (erase / roll forward / wild goose chase), DSM model\n");
    let widths = [15, 6, 11, 8, 11, 8, 8, 10, 10, 9, 7, 10, 10, 10];
    header(&[
        ("algorithm", 15),
        ("N", 6),
        ("stabilized", 11),
        ("stable", 8),
        ("chaseRMRs", 11),
        ("erased", 8),
        ("blocked", 8),
        ("amortized", 10),
        ("violation", 10),
        ("outOfCtr", 9),
        ("audit", 7),
        ("record_ms", 10),
        ("rounds_ms", 10),
        ("chase_ms", 10),
    ]);
    let rows = e2_dsm_lower_with(&sizes, audit);
    for r in &rows {
        row(
            &[
                r.algorithm.clone(),
                r.n.to_string(),
                r.stabilized.to_string(),
                r.stable.to_string(),
                r.chase_signaler_rmrs.to_string(),
                r.chase_erased.to_string(),
                r.blocked.to_string(),
                f2(r.amortized),
                r.violation.to_string(),
                r.out_of_contract.to_string(),
                r.audit_clean
                    .map_or_else(|| "-".to_string(), |c| if c { "ok" } else { "FAIL" }.into()),
                f2(r.timings.record_ms),
                f2(r.timings.rounds_ms),
                f2(r.timings.chase_ms),
            ],
            &widths,
        );
    }
    if json {
        let path = "BENCH_adversary.json";
        std::fs::write(path, to_json(&rows)).expect("write BENCH_adversary.json");
        println!("\nwrote {path}");
    }
    println!("\npaper: for any c there is a history with k participants and > c*k RMRs");
    println!("(reads/writes/CAS/LLSC). shape check: broadcast's amortized column grows");
    println!("~linearly with N; cc-flag never stabilizes (waiters pay); single-waiter's");
    println!("spec failures are out-of-contract (its §7 premise is one waiter; the");
    println!("adversary drives many), not violations; queue-faa (outside the primitive");
    println!("class) blocks every erasure and stays flat.");
    if audit {
        let divergent: Vec<&E2Row> = rows
            .iter()
            .filter(|r| r.audit_clean == Some(false))
            .collect();
        for r in &divergent {
            eprintln!(
                "AUDIT DIVERGENCE: {} n={}: {}",
                r.algorithm,
                r.n,
                r.audit_divergence.as_deref().unwrap_or("?")
            );
        }
        let violations: Vec<&E2Row> = rows.iter().filter(|r| r.violation).collect();
        for r in &violations {
            eprintln!("IN-CONTRACT VIOLATION: {} n={}", r.algorithm, r.n);
        }
        if !divergent.is_empty() || !violations.is_empty() {
            std::process::exit(1);
        }
        println!("\naudit: all phases clean under all four cost models");
    }
}
