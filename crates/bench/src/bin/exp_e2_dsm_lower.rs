//! E2 — Theorem 6.2: the executable lower-bound adversary in the DSM model.
//!
//! Run with: `cargo run --release -p bench --bin exp_e2_dsm_lower`
//!
//! Pass `--json` to also write the rows (including per-phase wall-clock
//! timings of the incremental replay engine) to `BENCH_adversary.json`.
//! Pass `--audit` to shadow-execute every phase's final history under naive
//! reference implementations of all four cost models and diff it against
//! the incremental path; the process exits nonzero on any divergence or
//! in-contract safety violation. Pass `--sizes 32,64` to override the
//! default population sizes, `--threads N` to set the pool size (default:
//! `CC_DSM_THREADS` or available parallelism; 1 = exact serial path),
//! `--speedup` to re-run the sweep at `--threads 1` and record per-phase
//! parallel speedups, and `--canon FILE` to write the canonical
//! (timing-free) row JSON for byte-equality determinism checks.
//!
//! Observability: `--metrics out.json`, `--trace-chrome out.json`,
//! `--trace-jsonl out.jsonl`, `--obs-summary`, `--trace-wall` (see
//! [`bench::cli::ObsFlags`]). With a collector installed each row also
//! carries a compact `obs` block of its deterministic counter totals, in
//! both `--canon` and `BENCH_adversary.json` output. Under `--speedup` the
//! collector is cleared before the serial re-run, so the sink files cover
//! exactly one sweep (the serial one — byte-identical to the parallel
//! sweep's recording by determinism).

use bench::table::{f2, header, row};
use bench::{canon, cli, e2_dsm_lower_with, E2Row};
use std::time::Instant;

/// Ratio rendered as JSON: `serial / parallel`, `null` when not measured or
/// when the parallel denominator is ~0.
fn speedup_json(serial: Option<f64>, parallel: f64) -> String {
    match serial {
        Some(s) if parallel > 1e-9 => format!("{:.3}", s / parallel),
        _ => "null".to_string(),
    }
}

fn row_json(r: &E2Row, threads: usize, serial: Option<&E2Row>) -> String {
    let audit_clean = r
        .audit_clean
        .map_or_else(|| "null".to_string(), |c| c.to_string());
    // The divergence is already a JSON object; embed it verbatim.
    let audit_divergence = r.audit_divergence.clone().unwrap_or_else(|| "null".into());
    // So is the obs block (deterministic counter totals for this row).
    let obs = r.obs.clone().unwrap_or_else(|| "null".into());
    format!(
        concat!(
            "  {{\"algorithm\": \"{}\", \"n\": {}, \"stabilized\": {}, ",
            "\"stable\": {}, \"chase_signaler_rmrs\": {}, \"chase_erased\": {}, ",
            "\"blocked\": {}, \"amortized\": {:.4}, \"violation\": {}, ",
            "\"out_of_contract\": {}, \"audit_clean\": {}, \"audit_divergence\": {}, ",
            "\"obs\": {}, \"threads\": {}, \"iters\": 1, ",
            "\"record_ms\": {:.3}, \"rounds_ms\": {:.3}, \"chase_ms\": {:.3}, ",
            "\"discovery_ms\": {:.3}, \"total_ms\": {:.3}, ",
            "\"record_speedup\": {}, \"rounds_speedup\": {}, \"chase_speedup\": {}, ",
            "\"discovery_speedup\": {}, \"total_speedup\": {}}}"
        ),
        r.algorithm.replace('\\', "\\\\").replace('"', "\\\""),
        r.n,
        r.stabilized,
        r.stable,
        r.chase_signaler_rmrs,
        r.chase_erased,
        r.blocked,
        r.amortized,
        r.violation,
        r.out_of_contract,
        audit_clean,
        audit_divergence,
        obs,
        threads,
        r.timings.record_ms,
        r.timings.rounds_ms,
        r.timings.chase_ms,
        r.timings.discovery_ms,
        r.timings.total_ms(),
        speedup_json(serial.map(|s| s.timings.record_ms), r.timings.record_ms),
        speedup_json(serial.map(|s| s.timings.rounds_ms), r.timings.rounds_ms),
        speedup_json(serial.map(|s| s.timings.chase_ms), r.timings.chase_ms),
        speedup_json(
            serial.map(|s| s.timings.discovery_ms),
            r.timings.discovery_ms
        ),
        speedup_json(serial.map(|s| s.timings.total_ms()), r.timings.total_ms()),
    )
}

fn to_json(
    rows: &[E2Row],
    threads: usize,
    wall_ms: f64,
    serial: Option<(&[E2Row], f64)>,
) -> String {
    let (serial_wall, speedup) = serial.map_or_else(
        || ("null".to_string(), "null".to_string()),
        |(_, sw)| {
            (
                format!("{sw:.3}"),
                if wall_ms > 1e-9 {
                    format!("{:.3}", sw / wall_ms)
                } else {
                    "null".to_string()
                },
            )
        },
    );
    let mut out = format!(
        concat!(
            "{{\"threads\": {}, \"wall_ms\": {:.3}, \"serial_wall_ms\": {}, ",
            "\"speedup\": {}, \"rows\": [\n"
        ),
        threads, wall_ms, serial_wall, speedup,
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&row_json(r, threads, serial.map(|(s, _)| &s[i])));
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let audit = args.iter().any(|a| a == "--audit");
    let speedup = args.iter().any(|a| a == "--speedup");
    let canon_path = cli::value_of(&args, "--canon");
    let obs = cli::obs_flags(&args);
    let sizes = cli::sizes_of(&args, &[32, 64, 128, 256]);
    let threads = cli::apply_threads(&args);
    let obs_col = cli::obs_install(&obs);
    println!("E2: the §6 adversary (erase / roll forward / wild goose chase), DSM model\n");
    let widths = [15, 6, 11, 8, 11, 8, 8, 10, 10, 9, 7, 10, 10, 10];
    header(&[
        ("algorithm", 15),
        ("N", 6),
        ("stabilized", 11),
        ("stable", 8),
        ("chaseRMRs", 11),
        ("erased", 8),
        ("blocked", 8),
        ("amortized", 10),
        ("violation", 10),
        ("outOfCtr", 9),
        ("audit", 7),
        ("record_ms", 10),
        ("rounds_ms", 10),
        ("chase_ms", 10),
    ]);
    let t = Instant::now();
    let rows = e2_dsm_lower_with(&sizes, audit);
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    for r in &rows {
        row(
            &[
                r.algorithm.clone(),
                r.n.to_string(),
                r.stabilized.to_string(),
                r.stable.to_string(),
                r.chase_signaler_rmrs.to_string(),
                r.chase_erased.to_string(),
                r.blocked.to_string(),
                f2(r.amortized),
                r.violation.to_string(),
                r.out_of_contract.to_string(),
                r.audit_clean
                    .map_or_else(|| "-".to_string(), |c| if c { "ok" } else { "FAIL" }.into()),
                f2(r.timings.record_ms),
                f2(r.timings.rounds_ms),
                f2(r.timings.chase_ms),
            ],
            &widths,
        );
    }
    let serial = speedup.then(|| {
        println!("\n--speedup: re-running the sweep at --threads 1 ...");
        // Start the recording over: the sink files should cover one sweep,
        // not the parallel run plus this re-run. Determinism makes the
        // serial recording byte-identical to the parallel one anyway.
        if let Some(c) = &obs_col {
            c.clear();
        }
        shm_pool::set_threads(1);
        let t = Instant::now();
        let serial_rows = e2_dsm_lower_with(&sizes, audit);
        let serial_wall = t.elapsed().as_secs_f64() * 1e3;
        shm_pool::set_threads(threads);
        assert_eq!(
            canon::e2_json(&serial_rows),
            canon::e2_json(&rows),
            "serial and parallel sweeps must agree on every deterministic field"
        );
        println!(
            "wall: {wall_ms:.1} ms at {threads} threads vs {serial_wall:.1} ms serial \
             ({:.2}x)",
            serial_wall / wall_ms.max(1e-9),
        );
        (serial_rows, serial_wall)
    });
    if json {
        let path = "BENCH_adversary.json";
        let body = to_json(
            &rows,
            threads,
            wall_ms,
            serial.as_ref().map(|(r, w)| (r.as_slice(), *w)),
        );
        std::fs::write(path, body).expect("write BENCH_adversary.json");
        println!("\nwrote {path}");
    }
    if let Some(path) = canon_path {
        std::fs::write(&path, canon::e2_json(&rows))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
    cli::obs_finish(&obs, obs_col.as_ref());
    println!("\npaper: for any c there is a history with k participants and > c*k RMRs");
    println!("(reads/writes/CAS/LLSC). shape check: broadcast's amortized column grows");
    println!("~linearly with N; cc-flag never stabilizes (waiters pay); single-waiter's");
    println!("spec failures are out-of-contract (its §7 premise is one waiter; the");
    println!("adversary drives many), not violations; queue-faa (outside the primitive");
    println!("class) blocks every erasure and stays flat.");
    if audit {
        let divergent: Vec<&E2Row> = rows
            .iter()
            .filter(|r| r.audit_clean == Some(false))
            .collect();
        for r in &divergent {
            eprintln!(
                "AUDIT DIVERGENCE: {} n={}: {}",
                r.algorithm,
                r.n,
                r.audit_divergence.as_deref().unwrap_or("?")
            );
        }
        let violations: Vec<&E2Row> = rows.iter().filter(|r| r.violation).collect();
        for r in &violations {
            eprintln!("IN-CONTRACT VIOLATION: {} n={}", r.algorithm, r.n);
        }
        if !divergent.is_empty() || !violations.is_empty() {
            std::process::exit(1);
        }
        println!("\naudit: all phases clean under all four cost models");
    }
}
