//! E2 — Theorem 6.2: the executable lower-bound adversary in the DSM model.
//!
//! Run with: `cargo run --release -p bench --bin exp_e2_dsm_lower`

use bench::table::{f2, header, row};
use bench::e2_dsm_lower;

fn main() {
    println!("E2: the §6 adversary (erase / roll forward / wild goose chase), DSM model\n");
    let widths = [15, 6, 11, 8, 11, 8, 8, 10, 10];
    header(&[
        ("algorithm", 15),
        ("N", 6),
        ("stabilized", 11),
        ("stable", 8),
        ("chaseRMRs", 11),
        ("erased", 8),
        ("blocked", 8),
        ("amortized", 10),
        ("violation", 10),
    ]);
    for r in e2_dsm_lower(&[32, 64, 128, 256]) {
        row(
            &[
                r.algorithm.clone(),
                r.n.to_string(),
                r.stabilized.to_string(),
                r.stable.to_string(),
                r.chase_signaler_rmrs.to_string(),
                r.chase_erased.to_string(),
                r.blocked.to_string(),
                f2(r.amortized),
                r.violation.to_string(),
            ],
            &widths,
        );
    }
    println!("\npaper: for any c there is a history with k participants and > c*k RMRs");
    println!("(reads/writes/CAS/LLSC). shape check: broadcast's amortized column grows");
    println!("~linearly with N; cc-flag never stabilizes (waiters pay); single-waiter is");
    println!("exposed as unsafe with many waiters; queue-faa (outside the primitive class)");
    println!("blocks every erasure and stays flat.");
}
