//! E2 — Theorem 6.2: the executable lower-bound adversary in the DSM model.
//!
//! Run with: `cargo run --release -p bench --bin exp_e2_dsm_lower`
//!
//! Pass `--json` to also write the rows (including per-phase wall-clock
//! timings of the incremental replay engine) to `BENCH_adversary.json`.

use bench::table::{f2, header, row};
use bench::{e2_dsm_lower, E2Row};

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn to_json(rows: &[E2Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "  {{\"algorithm\": \"{}\", \"n\": {}, \"stabilized\": {}, ",
                "\"stable\": {}, \"chase_signaler_rmrs\": {}, \"chase_erased\": {}, ",
                "\"blocked\": {}, \"amortized\": {:.4}, \"violation\": {}, ",
                "\"record_ms\": {:.3}, \"rounds_ms\": {:.3}, \"chase_ms\": {:.3}, ",
                "\"discovery_ms\": {:.3}, \"total_ms\": {:.3}}}{}"
            ),
            json_escape(&r.algorithm),
            r.n,
            r.stabilized,
            r.stable,
            r.chase_signaler_rmrs,
            r.chase_erased,
            r.blocked,
            r.amortized,
            r.violation,
            r.timings.record_ms,
            r.timings.rounds_ms,
            r.timings.chase_ms,
            r.timings.discovery_ms,
            r.timings.total_ms(),
            if i + 1 < rows.len() { ",\n" } else { "\n" },
        ));
    }
    out.push_str("]\n");
    out
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    println!("E2: the §6 adversary (erase / roll forward / wild goose chase), DSM model\n");
    let widths = [15, 6, 11, 8, 11, 8, 8, 10, 10, 10, 10, 10];
    header(&[
        ("algorithm", 15),
        ("N", 6),
        ("stabilized", 11),
        ("stable", 8),
        ("chaseRMRs", 11),
        ("erased", 8),
        ("blocked", 8),
        ("amortized", 10),
        ("violation", 10),
        ("record_ms", 10),
        ("rounds_ms", 10),
        ("chase_ms", 10),
    ]);
    let rows = e2_dsm_lower(&[32, 64, 128, 256]);
    for r in &rows {
        row(
            &[
                r.algorithm.clone(),
                r.n.to_string(),
                r.stabilized.to_string(),
                r.stable.to_string(),
                r.chase_signaler_rmrs.to_string(),
                r.chase_erased.to_string(),
                r.blocked.to_string(),
                f2(r.amortized),
                r.violation.to_string(),
                f2(r.timings.record_ms),
                f2(r.timings.rounds_ms),
                f2(r.timings.chase_ms),
            ],
            &widths,
        );
    }
    if json {
        let path = "BENCH_adversary.json";
        std::fs::write(path, to_json(&rows)).expect("write BENCH_adversary.json");
        println!("\nwrote {path}");
    }
    println!("\npaper: for any c there is a history with k participants and > c*k RMRs");
    println!("(reads/writes/CAS/LLSC). shape check: broadcast's amortized column grows");
    println!("~linearly with N; cc-flag never stabilizes (waiters pay); single-waiter is");
    println!("exposed as unsafe with many waiters; queue-faa (outside the primitive class)");
    println!("blocks every erasure and stays flat.");
}
