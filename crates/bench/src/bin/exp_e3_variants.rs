//! E3 — §7 variant upper bounds, measured in both models.
//!
//! Run with: `cargo run --release -p bench --bin exp_e3_variants`
//!
//! Pass `--threads N` to set the pool size (1 = exact serial path).
//! Observability: `--metrics` / `--trace-chrome` / `--trace-jsonl` /
//! `--obs-summary` / `--trace-wall` (see [`bench::cli::ObsFlags`]).

use bench::table::{f2, header, row};
use bench::{cli, e3_variants};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let _threads = cli::apply_threads(&args);
    let obs = cli::obs_flags(&args);
    let obs_col = cli::obs_install(&obs);
    println!("E3: §7 signaling variants, 32 waiters (1 for single-waiter), 25 polls each\n");
    let widths = [22, 5, 14, 13, 10, 30];
    header(&[
        ("algorithm", 22),
        ("model", 5),
        ("maxWaiterRMR", 14),
        ("signalerRMR", 13),
        ("amortized", 10),
        ("paper bound", 30),
    ]);
    for r in e3_variants(32, 25) {
        row(
            &[
                r.algorithm.clone(),
                r.model.into(),
                r.max_waiter_rmrs.to_string(),
                r.signaler_rmrs.to_string(),
                f2(r.amortized),
                r.paper_bound.into(),
            ],
            &widths,
        );
    }
    cli::obs_finish(&obs, obs_col.as_ref());
    println!("\nshape check: every variant is O(1) per waiter in DSM except cc-flag;");
    println!("signaler cost is O(1) (single-waiter), O(W) (fixed/broadcast-style), or");
    println!("O(registered) (fixed-signaler, queue-faa) — matching the §7 catalogue.");
}
