//! E4 — the primitive boundary: FAA escapes the lower bound, reads/writes
//! do not.
//!
//! Run with: `cargo run --release -p bench --bin exp_e4_primitives`
//!
//! Pass `--threads N` to set the pool size (1 = exact serial path).
//! Observability: `--metrics` / `--trace-chrome` / `--trace-jsonl` /
//! `--obs-summary` / `--trace-wall` (see [`bench::cli::ObsFlags`]).

use bench::table::{f2, header, row};
use bench::{cli, e4_primitives};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let _threads = cli::apply_threads(&args);
    let obs = cli::obs_flags(&args);
    let obs_col = cli::obs_install(&obs);
    println!("E4: adversarial amortized RMRs vs N — broadcast (reads/writes) vs queue (FAA)\n");
    let widths = [6, 22, 18, 15];
    header(&[
        ("N", 6),
        ("broadcast amortized", 22),
        ("queue amortized", 18),
        ("queue blocked", 15),
    ]);
    for r in e4_primitives(&[16, 32, 64, 128, 256, 512]) {
        row(
            &[
                r.n.to_string(),
                f2(r.broadcast_amortized),
                f2(r.queue_amortized),
                r.queue_blocked.to_string(),
            ],
            &widths,
        );
    }
    cli::obs_finish(&obs, obs_col.as_ref());
    println!("\npaper: Corollary 6.14 covers reads/writes + CAS/LLSC; §7 closes the gap");
    println!("with Fetch-And-Add. shape check: the broadcast column grows ~N/2 while the");
    println!("queue column stays flat; 'blocked' counts erasures the certification refused");
    println!("(FAA tickets entangle processes without any 'sees' relation).");
}
