//! E9 — bounded model checking: exhaustive schedule-space exploration of the
//! shipped signaling algorithms (and the seeded-buggy negative control) at
//! small n, with the §6 adversary's chase cost as a cross-check.
//!
//! Run with: `cargo run --release -p bench --bin exp_e9_explore`
//!
//! Pass `--threads N` to set the pool size (1 = exact serial path) and
//! `--canon FILE` to write the canonical row JSON for byte-equality
//! determinism checks. `--mem-budget BYTES` (`64k`/`512m`/`1g` accepted)
//! caps the explorer's visited-set + frontier residency; beyond it keys and
//! nodes spill to delta-compressed disk runs with every verdict, count,
//! maximum, and counterexample byte-identical to the unbudgeted run.
//! `--deep` replaces the sweep with the single **deep row** — the largest
//! shipped state space (single-waiter × DSM) one size up at n = 4, the row
//! CI runs under a hard address-space cap to prove the spill path holds the
//! line. Observability: `--metrics` / `--trace-chrome` / `--trace-jsonl` /
//! `--obs-summary` / `--trace-wall` (see [`bench::cli::ObsFlags`]).
//!
//! Exits nonzero when the exploration refutes the repo's claims: an
//! in-contract Specification 4.1 violation in a shipped algorithm, a missed
//! seeded-buggy violation (the negative control), a non-exhaustive run, or
//! an explored RMR maximum below the adversary's constructed chase cost.

use bench::table::{header, row};
use bench::{canon, cli, e9_deep, e9_explore_with, E9_DEEP_MAX_POLLS, E9_DEEP_WAITERS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let _threads = cli::apply_threads(&args);
    let canon_path = cli::value_of(&args, "--canon");
    let mem_budget = cli::mem_budget_of(&args);
    let deep = args.iter().any(|a| a == "--deep");
    let obs = cli::obs_flags(&args);
    let obs_col = cli::obs_install(&obs);
    if deep {
        println!(
            "E9 deep row: single-waiter x DSM, {E9_DEEP_WAITERS} waiters (max \
             {E9_DEEP_MAX_POLLS} poll) + 1 signaler (1 pre-poll)"
        );
    } else {
        println!("E9: exhaustive exploration, 2 waiters (max 2 polls) + 1 signaler (1 pre-poll)");
    }
    match mem_budget {
        Some(b) => println!("memory budget: {b} bytes (spilling past it)\n"),
        None => println!(),
    }
    let widths = [15, 5, 9, 9, 12, 12, 11, 7];
    header(&[
        ("algorithm", 15),
        ("model", 5),
        ("explored", 9),
        ("terminals", 9),
        ("violations", 12),
        ("in-contract", 12),
        ("max sig RMR", 11),
        ("chase", 7),
    ]);
    let rows = if deep {
        e9_deep(mem_budget)
    } else {
        e9_explore_with(2, 2, mem_budget)
    };
    for r in &rows {
        row(
            &[
                r.algorithm.clone(),
                r.model.into(),
                r.explored.to_string(),
                r.terminals.to_string(),
                r.violations_found.to_string(),
                r.violations_in_contract.to_string(),
                r.max_signaler_rmrs.to_string(),
                r.chase_signaler_rmrs
                    .map_or_else(|| "-".into(), |c| c.to_string()),
            ],
            &widths,
        );
    }
    println!("\nmemory trajectory (logical bytes, deterministic):");
    for r in &rows {
        println!(
            "  {:<15} {:<5} peak_frontier={} peak_visited_bytes={} spilled_bytes={}",
            r.algorithm, r.model, r.peak_frontier, r.peak_visited_bytes, r.spilled_bytes
        );
    }
    if let Some(path) = canon_path {
        std::fs::write(&path, canon::e9_json(&rows))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote {path}");
    }
    cli::obs_finish(&obs, obs_col.as_ref());
    let mut failures = Vec::new();
    for r in &rows {
        if !r.exhaustive {
            failures.push(format!(
                "{} ({}): exploration was not exhaustive",
                r.algorithm, r.model
            ));
        }
        if r.algorithm == "seeded-buggy" {
            if r.violations_in_contract == 0 {
                failures.push(format!(
                    "{} ({}): negative control found no in-contract violation",
                    r.algorithm, r.model
                ));
            } else if let Some(cx) = &r.counterexample {
                println!("\n{} ({}) counterexample: {cx}", r.algorithm, r.model);
            }
        } else if r.violations_in_contract > 0 {
            failures.push(format!(
                "{} ({}): {} in-contract spec violation(s): {}",
                r.algorithm,
                r.model,
                r.violations_in_contract,
                r.counterexample.as_deref().unwrap_or("<no counterexample>")
            ));
        }
        if let Some(chase) = r.chase_signaler_rmrs {
            if r.max_signaler_rmrs < chase {
                failures.push(format!(
                    "{} ({}): explored max signaler RMRs {} < chase-constructed {chase}",
                    r.algorithm, r.model, r.max_signaler_rmrs
                ));
            }
        }
    }
    println!("\npaper tie-in: at small n the explorer certifies Specification 4.1 over");
    println!("EVERY schedule (within each algorithm's participation contract) and");
    println!("measures the true maximum of the signaler's RMRs; the §6 wild-goose-chase");
    println!("cost is one reachable schedule, so the explored maximum dominates it.");
    if !failures.is_empty() {
        eprintln!("\nE9 FAILURES:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
