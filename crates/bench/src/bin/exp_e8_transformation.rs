//! E8 — Corollary 6.14: CAS does not escape the lower bound, natively or
//! after transformation to reads/writes; FAA does.
//!
//! Run with: `cargo run --release -p bench --bin exp_e8_transformation`
//!
//! Pass `--audit` to shadow-execute each variant's recording phase under
//! naive reference implementations of all four cost models; the process
//! exits nonzero on any divergence. Pass `--sizes 16,32` to override the
//! default population sizes, `--threads N` to set the pool size (1 = exact
//! serial path), and `--canon FILE` to write the canonical row JSON for
//! byte-equality determinism checks. Observability: `--metrics` /
//! `--trace-chrome` / `--trace-jsonl` / `--obs-summary` / `--trace-wall`
//! (see [`bench::cli::ObsFlags`]).

use bench::table::{f2, header, row};
use bench::{canon, cli, e8_transformation_with};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let audit = args.iter().any(|a| a == "--audit");
    let _threads = cli::apply_threads(&args);
    let canon_path = cli::value_of(&args, "--canon");
    let sizes = cli::sizes_of(&args, &[16, 32, 64, 128]);
    let obs = cli::obs_flags(&args);
    let obs_col = cli::obs_install(&obs);
    println!("E8: Corollary 6.14 — the primitive classes under the same adversary\n");
    let widths = [14, 6, 11, 8, 11, 9, 13, 7, 10, 10, 10];
    header(&[
        ("variant", 14),
        ("N", 6),
        ("stabilized", 11),
        ("stable", 8),
        ("amortized", 11),
        ("blocked", 9),
        ("signalStuck", 13),
        ("audit", 7),
        ("record_ms", 10),
        ("rounds_ms", 10),
        ("chase_ms", 10),
    ]);
    let rows = e8_transformation_with(&sizes, audit);
    for r in &rows {
        row(
            &[
                r.variant.clone(),
                r.n.to_string(),
                r.stabilized.to_string(),
                r.stable.to_string(),
                f2(r.amortized),
                r.blocked.to_string(),
                r.signal_stuck.to_string(),
                r.audit_clean
                    .map_or_else(|| "-".to_string(), |c| if c { "ok" } else { "FAIL" }.into()),
                f2(r.timings.record_ms),
                f2(r.timings.rounds_ms),
                f2(r.timings.chase_ms),
            ],
            &widths,
        );
    }
    if let Some(path) = canon_path {
        std::fs::write(&path, canon::e8_json(&rows))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote {path}");
    }
    cli::obs_finish(&obs, obs_col.as_ref());
    println!("\npaper (Cor. 6.14): the DSM lower bound holds for reads/writes plus CAS");
    println!("or LL/SC, via locally-accessible read/write implementations of those");
    println!("primitives. shape check: cas-list amortized grows ~N/2 (the CAS scan is");
    println!("inherently Theta(k) per registrant); cas-list+rw (every CAS replaced by a");
    println!("tournament-lock-protected read-modify-write, reads/writes only) also grows");
    println!("with N; queue-faa stays flat — the boundary is comparison vs.");
    println!("non-comparison primitives, exactly where the paper draws it. 'blocked'");
    println!("rows document our adversary's honest limitation on native CAS chains");
    println!("(the paper transforms first; we show both sides).");
    if audit {
        if rows.iter().any(|r| r.audit_clean == Some(false)) {
            eprintln!("AUDIT DIVERGENCE: at least one variant diverged from the naive replay");
            std::process::exit(1);
        }
        println!("\naudit: all recordings clean under all four cost models");
    }
}
