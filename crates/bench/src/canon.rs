//! Canonical JSON serialization of experiment rows.
//!
//! These serializers emit only the *deterministic* fields of each row — no
//! wall-clock timings, no thread counts — with a fixed key order and fixed
//! float formatting, so the output is byte-identical across thread counts
//! and across machines. The determinism tests and the `--canon` flags of the
//! experiment binaries compare these byte-for-byte between `--threads 1` and
//! multi-threaded runs.

use crate::{E10Row, E1Row, E2Row, E5Row, E6Row, E8Row, E9Row};

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_owned(), |x| x.to_string())
}

/// The trailing `, "obs": {...}` fragment for a row, or empty when no
/// collector was installed. The block holds deterministic counter totals
/// only (already canonical JSON), so `--canon` output stays byte-identical
/// across thread counts even with recording enabled.
fn obs_block(obs: Option<&String>) -> String {
    obs.map_or_else(String::new, |o| format!(", \"obs\": {o}"))
}

fn join_rows(rows: Vec<String>) -> String {
    let mut out = String::from("[\n");
    let n = rows.len();
    for (i, r) in rows.into_iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r);
        out.push_str(if i + 1 < n { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Canonical JSON for E1 rows (stable key order, deterministic fields only).
#[must_use]
pub fn e1_json(rows: &[E1Row]) -> String {
    join_rows(
        rows.iter()
            .map(|r| {
                format!(
                    concat!(
                        "{{\"model\": \"{}\", \"n_waiters\": {}, \"polls\": {}, ",
                        "\"max_rmrs_per_proc\": {}, \"total_rmrs\": {}{}}}"
                    ),
                    json_escape(r.model),
                    r.n_waiters,
                    r.polls,
                    r.max_rmrs_per_proc,
                    r.total_rmrs,
                    obs_block(r.obs.as_ref()),
                )
            })
            .collect(),
    )
}

/// Canonical JSON for E2 rows: the deterministic adversary outcome fields,
/// without the per-phase timings (those go in `BENCH_adversary.json`).
#[must_use]
pub fn e2_json(rows: &[E2Row]) -> String {
    join_rows(
        rows.iter()
            .map(|r| {
                let audit_clean = r
                    .audit_clean
                    .map_or_else(|| "null".to_string(), |c| c.to_string());
                // The divergence is already a JSON object; embed it verbatim.
                let audit_divergence = r.audit_divergence.clone().unwrap_or_else(|| "null".into());
                format!(
                    concat!(
                        "{{\"algorithm\": \"{}\", \"n\": {}, \"stabilized\": {}, ",
                        "\"stable\": {}, \"chase_signaler_rmrs\": {}, \"chase_erased\": {}, ",
                        "\"blocked\": {}, \"amortized\": {:.4}, \"violation\": {}, ",
                        "\"out_of_contract\": {}, \"audit_clean\": {}, \"audit_divergence\": {}{}}}"
                    ),
                    json_escape(&r.algorithm),
                    r.n,
                    r.stabilized,
                    r.stable,
                    r.chase_signaler_rmrs,
                    r.chase_erased,
                    r.blocked,
                    r.amortized,
                    r.violation,
                    r.out_of_contract,
                    audit_clean,
                    audit_divergence,
                    obs_block(r.obs.as_ref()),
                )
            })
            .collect(),
    )
}

/// Canonical JSON for E5 rows. The `seed` key records the randomized lock
/// scheduler's seed on the mutex rows and is `null` on the scripted
/// (seedless) signaling rows.
#[must_use]
pub fn e5_json(rows: &[E5Row]) -> String {
    join_rows(
        rows.iter()
            .map(|r| {
                format!(
                    concat!(
                        "{{\"workload\": \"{}\", \"interconnect\": \"{}\", \"seed\": {}, ",
                        "\"rmrs\": {}, \"messages\": {}, \"invalidations\": {}, ",
                        "\"messages_per_rmr\": {:.4}}}"
                    ),
                    json_escape(r.workload),
                    json_escape(r.interconnect),
                    opt_u64(r.seed),
                    r.rmrs,
                    r.messages,
                    r.invalidations,
                    r.messages_per_rmr,
                )
            })
            .collect(),
    )
}

/// Canonical JSON for E6 rows, including the workload scheduler's seed.
#[must_use]
pub fn e6_json(rows: &[E6Row]) -> String {
    join_rows(
        rows.iter()
            .map(|r| {
                format!(
                    concat!(
                        "{{\"lock\": \"{}\", \"model\": \"{}\", \"n\": {}, \"seed\": {}, ",
                        "\"rmrs_per_passage\": {:.4}}}"
                    ),
                    json_escape(&r.lock),
                    json_escape(r.model),
                    r.n,
                    r.seed,
                    r.rmrs_per_passage,
                )
            })
            .collect(),
    )
}

/// Canonical JSON for E8 rows (deterministic fields only).
#[must_use]
pub fn e8_json(rows: &[E8Row]) -> String {
    join_rows(
        rows.iter()
            .map(|r| {
                let audit_clean = r
                    .audit_clean
                    .map_or_else(|| "null".to_string(), |c| c.to_string());
                format!(
                    concat!(
                        "{{\"variant\": \"{}\", \"n\": {}, \"stabilized\": {}, ",
                        "\"stable\": {}, \"amortized\": {:.4}, \"blocked\": {}, ",
                        "\"signal_stuck\": {}, \"audit_clean\": {}{}}}"
                    ),
                    json_escape(&r.variant),
                    r.n,
                    r.stabilized,
                    r.stable,
                    r.amortized,
                    r.blocked,
                    r.signal_stuck,
                    audit_clean,
                    obs_block(r.obs.as_ref()),
                )
            })
            .collect(),
    )
}

/// Canonical JSON for E10 rows: the PCT sampling parameters and verdicts,
/// with the shrunk counterexample (already canonical JSON) embedded
/// verbatim. Everything here is a pure function of the row's scenario and
/// `pct_seed`, so the output is byte-identical across thread counts.
#[must_use]
pub fn e10_json(rows: &[E10Row]) -> String {
    join_rows(
        rows.iter()
            .map(|r| {
                let counterexample = r.counterexample.clone().unwrap_or_else(|| "null".into());
                format!(
                    concat!(
                        "{{\"algorithm\": \"{}\", \"model\": \"{}\", \"n\": {}, \"seed\": {}, ",
                        "\"pct_seed\": {}, \"schedules\": {}, \"depth_d\": {}, ",
                        "\"steps_budget\": {}, \"terminals\": {}, ",
                        "\"distinct_fingerprints\": {}, \"violations_found\": {}, ",
                        "\"violations_in_contract\": {}, \"max_signaler_rmrs\": {}, ",
                        "\"peak_visited_bytes\": {}, \"spilled_bytes\": {}, ",
                        "\"counterexample\": {}{}}}"
                    ),
                    json_escape(&r.algorithm),
                    json_escape(r.model),
                    r.n,
                    opt_u64(r.seed),
                    r.pct_seed,
                    r.schedules,
                    r.depth_d,
                    r.steps_budget,
                    r.terminals,
                    r.distinct_fingerprints,
                    r.violations_found,
                    r.violations_in_contract,
                    r.max_signaler_rmrs,
                    r.peak_visited_bytes,
                    r.spilled_bytes,
                    counterexample,
                    obs_block(r.obs.as_ref()),
                )
            })
            .collect(),
    )
}

/// Canonical JSON for E9 rows: the exploration verdicts, the empirical RMR
/// maximum and the chase comparison, with the shrunk counterexample (already
/// canonical JSON) embedded verbatim.
#[must_use]
pub fn e9_json(rows: &[E9Row]) -> String {
    join_rows(
        rows.iter()
            .map(|r| {
                let counterexample = r.counterexample.clone().unwrap_or_else(|| "null".into());
                format!(
                    concat!(
                        "{{\"algorithm\": \"{}\", \"model\": \"{}\", \"n\": {}, \"seed\": {}, ",
                        "\"explored\": {}, \"terminals\": {}, \"exhaustive\": {}, ",
                        "\"violations_found\": {}, \"violations_in_contract\": {}, ",
                        "\"max_signaler_rmrs\": {}, \"chase_signaler_rmrs\": {}, ",
                        "\"peak_frontier\": {}, \"peak_visited_bytes\": {}, ",
                        "\"spilled_bytes\": {}, \"counterexample\": {}{}}}"
                    ),
                    json_escape(&r.algorithm),
                    json_escape(r.model),
                    r.n,
                    opt_u64(r.seed),
                    r.explored,
                    r.terminals,
                    r.exhaustive,
                    r.violations_found,
                    r.violations_in_contract,
                    r.max_signaler_rmrs,
                    opt_u64(r.chase_signaler_rmrs),
                    r.peak_frontier,
                    r.peak_visited_bytes,
                    r.spilled_bytes,
                    counterexample,
                    obs_block(r.obs.as_ref()),
                )
            })
            .collect(),
    )
}
