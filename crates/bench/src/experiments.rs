//! The experiment implementations. See the crate docs for the claim map.
//!
//! Every sweep below is embarrassingly parallel: each (algorithm, size,
//! model) row is an independent deterministic simulation. The loops submit
//! one job per row to [`shm_pool::map_indexed`] and merge results by
//! submission index, so the returned row order — and any table/JSON rendered
//! from it — is byte-identical to the serial run at every thread count
//! (`--threads 1` / `CC_DSM_THREADS=1` is the exact serial path).

use rmr_adversary::{fixed_waiters_signaler_cost, run_lower_bound, LowerBoundConfig, PhaseTimings};
use shm_mutex::{run_lock_workload, LockWorkloadConfig, MutexAlgorithm};
use shm_pool::map_indexed;
use shm_sim::{CcConfig, CostModel, Interconnect, ProcId, Protocol, Scripted, SimSpec, Simulator};
use signaling::algorithms::{
    Broadcast, CcFlag, FixedSignaler, FixedWaiters, QueueSignaling, SingleWaiter,
};
use signaling::{check_polling, Role, Scenario, SignalingAlgorithm};

/// Builds the scripted "everyone polls `polls`× before the signal" schedule
/// used by E1/E3: an adversarial but model-independent interleaving, so the
/// identical execution is priced under every cost model.
fn poll_heavy_schedule(n_waiters: u32, polls: u32) -> Vec<ProcId> {
    let mut order = Vec::new();
    for _ in 0..polls {
        for w in 0..n_waiters {
            // Generous per-poll step allowance (first polls register).
            order.extend(std::iter::repeat_n(ProcId(w), 10));
        }
    }
    for p in 0..=n_waiters {
        order.extend(std::iter::repeat_n(ProcId(p), 4 * n_waiters as usize + 16));
    }
    // Final drain so every waiter observes the signal.
    for w in 0..n_waiters {
        order.extend(std::iter::repeat_n(ProcId(w), 12));
    }
    order
}

fn run_poll_heavy(
    algo: &dyn SignalingAlgorithm,
    n_waiters: u32,
    polls: u32,
    model: CostModel,
) -> Simulator {
    let mut roles = vec![Role::waiter(); n_waiters as usize];
    roles.push(Role::signaler());
    let scenario = Scenario {
        algorithm: algo,
        roles,
        model,
    };
    let spec: SimSpec = scenario.build();
    let mut sim = Simulator::new(&spec);
    let mut sched = Scripted::new(poll_heavy_schedule(n_waiters, polls));
    shm_sim::run(&mut sim, &mut sched, 100_000_000);
    assert_eq!(
        check_polling(sim.history()),
        Ok(()),
        "{}: spec violated",
        algo.name()
    );
    sim
}

// ---------------------------------------------------------------- E1 ----

/// One row of E1: the §5 algorithm priced under one cost model.
#[derive(Clone, Debug)]
pub struct E1Row {
    /// Cost-model label.
    pub model: &'static str,
    /// Number of waiters.
    pub n_waiters: u32,
    /// Polls per waiter before the signal.
    pub polls: u32,
    /// Maximum RMRs incurred by any process.
    pub max_rmrs_per_proc: u64,
    /// Total RMRs.
    pub total_rmrs: u64,
    /// Deterministic counter totals for this row (canonical JSON object),
    /// recorded only when an `shm-obs` collector is installed.
    pub obs: Option<String>,
}

/// E1 — §5 upper bound: the single-Boolean algorithm costs O(1) RMRs per
/// process in every CC variant, independent of N and of how long waiters
/// poll; the same execution in DSM costs Θ(polls) per waiter.
#[must_use]
pub fn e1_cc_upper(sizes: &[u32], polls: u32) -> Vec<E1Row> {
    let models: [(&'static str, CostModel); 4] = [
        ("cc-write-through", CostModel::Cc(CcConfig::default())),
        (
            "cc-write-back",
            CostModel::Cc(CcConfig {
                protocol: Protocol::WriteBack,
                ..Default::default()
            }),
        ),
        (
            "cc-lfcu",
            CostModel::Cc(CcConfig {
                lfcu: true,
                ..Default::default()
            }),
        ),
        ("dsm", CostModel::Dsm),
    ];
    let mut jobs = Vec::new();
    for &n in sizes {
        for (label, model) in models {
            jobs.push((n, label, model));
        }
    }
    map_indexed(shm_pool::threads(), jobs, |_, (n, label, model)| {
        let mark = shm_obs::totals_mark();
        let sim = run_poll_heavy(&CcFlag, n, polls, model);
        sim.obs_flush("e1");
        let max = (0..=n)
            .map(|i| sim.proc_stats(ProcId(i)).rmrs)
            .max()
            .unwrap_or(0);
        E1Row {
            model: label,
            n_waiters: n,
            polls,
            max_rmrs_per_proc: max,
            total_rmrs: sim.totals().rmrs,
            obs: mark.map(|m| m.delta_json()),
        }
    })
}

// ---------------------------------------------------------------- E2 ----

/// One row of E2: the lower-bound adversary against one algorithm at one N.
#[derive(Clone, Debug)]
pub struct E2Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of processes.
    pub n: usize,
    /// Whether the waiter population stabilized (Part 1).
    pub stabilized: bool,
    /// Stable waiters surviving Part 1.
    pub stable: usize,
    /// RMRs forced on the signaler in the erase-on-sight chase.
    pub chase_signaler_rmrs: u64,
    /// Waiters hidden by certified erasure during the chase.
    pub chase_erased: usize,
    /// Erasures blocked by projection certification (FAA leakage).
    pub blocked: usize,
    /// Worst amortized RMRs (total / participants) across runs.
    pub amortized: f64,
    /// Whether a genuine (in-contract) Specification 4.1 violation was
    /// exposed.
    pub violation: bool,
    /// Whether some Part-2 history exceeded the algorithm's participation
    /// contract (safety failures in such histories are *not* counted as
    /// violations — e.g. single-waiter under the adversary's many waiters).
    pub out_of_contract: bool,
    /// Differential-audit verdict: `None` when auditing was off, otherwise
    /// whether every audited phase matched the naive reference executor.
    pub audit_clean: Option<bool>,
    /// First audit divergence, rendered as a JSON object (present only on a
    /// failed audit).
    pub audit_divergence: Option<String>,
    /// Deterministic counter totals for this row (canonical JSON object),
    /// recorded only when an `shm-obs` collector is installed.
    pub obs: Option<String>,
    /// Per-phase wall-clock (record / rounds / chase / discovery).
    pub timings: PhaseTimings,
}

/// E2 — Theorem 6.2: runs the full adversary against the read/write
/// algorithms (amortized cost must grow with N, or safety must break) and
/// against the FAA queue (the adversary must fail).
#[must_use]
pub fn e2_dsm_lower(sizes: &[usize]) -> Vec<E2Row> {
    e2_dsm_lower_with(sizes, false)
}

/// [`e2_dsm_lower`] with the differential audit optionally enabled: every
/// phase's final history is shadow-executed under naive reference
/// implementations of all four cost models and diffed against the
/// incremental path ([`shm_sim::Simulator::audit`]).
#[must_use]
pub fn e2_dsm_lower_with(sizes: &[usize], audit: bool) -> Vec<E2Row> {
    let algos: Vec<Box<dyn SignalingAlgorithm>> = vec![
        Box::new(Broadcast),
        Box::new(CcFlag),
        Box::new(SingleWaiter),
        Box::new(QueueSignaling),
    ];
    let mut jobs = Vec::new();
    for &n in sizes {
        for k in 0..algos.len() {
            jobs.push((n, k));
        }
    }
    let algos = &algos;
    map_indexed(shm_pool::threads(), jobs, move |_, (n, k)| {
        let mark = shm_obs::totals_mark();
        let mut cfg = LowerBoundConfig::for_n(n);
        cfg.part1.audit = audit;
        let report = run_lower_bound(algos[k].as_ref(), cfg);
        let (chase_rmrs, chase_erased, blocked) = report
            .chase
            .as_ref()
            .map_or((0, 0, 0), |c| (c.signaler_rmrs, c.erased.len(), c.blocked));
        E2Row {
            algorithm: report.algorithm.clone(),
            n,
            stabilized: report.part1.stabilized,
            stable: report.part1.stable.len(),
            chase_signaler_rmrs: chase_rmrs,
            chase_erased,
            blocked,
            amortized: report.worst_amortized(),
            violation: report.found_violation(),
            out_of_contract: report.out_of_contract(),
            audit_clean: report.audit_clean(),
            audit_divergence: report.first_divergence().map(|d| d.to_json()),
            obs: mark.map(|m| m.delta_json()),
            timings: report.timings,
        }
    })
}

// ---------------------------------------------------------------- E3 ----

/// One row of E3: a §7 variant algorithm measured under one model.
#[derive(Clone, Debug)]
pub struct E3Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Cost-model label.
    pub model: &'static str,
    /// Worst per-waiter RMRs across the run.
    pub max_waiter_rmrs: u64,
    /// Signaler RMRs.
    pub signaler_rmrs: u64,
    /// Total RMRs / participants.
    pub amortized: f64,
    /// The paper's stated bound for this variant (for the table).
    pub paper_bound: &'static str,
}

/// E3 — §7 variant upper bounds, measured. One signaler, `n_waiters`
/// waiters, poll-heavy schedule, both models.
#[must_use]
pub fn e3_variants(n_waiters: u32, polls: u32) -> Vec<E3Row> {
    let signaler = ProcId(n_waiters);
    let fixed: Vec<ProcId> = (0..n_waiters).map(ProcId).collect();
    let algos: Vec<(Box<dyn SignalingAlgorithm>, &'static str)> = vec![
        (Box::new(CcFlag), "O(1) CC / unbounded DSM"),
        (Box::new(SingleWaiter), "O(1) both (1 waiter)"),
        (
            Box::new(FixedWaiters::eager(fixed.clone())),
            "O(W) signaler, O(1) waiters",
        ),
        (
            Box::new(FixedWaiters::awaiting(fixed, signaler)),
            "O(1) amortized (terminating)",
        ),
        (
            Box::new(FixedSignaler { signaler }),
            "O(1) waiters, O(k) signaler",
        ),
        (Box::new(QueueSignaling), "O(1) amortized (FAA)"),
    ];
    let mut jobs = Vec::new();
    for k in 0..algos.len() {
        for (label, model) in [("cc", CostModel::cc_default()), ("dsm", CostModel::Dsm)] {
            jobs.push((k, label, model));
        }
    }
    let algos = &algos;
    map_indexed(shm_pool::threads(), jobs, move |_, (k, label, model)| {
        let (algo, paper_bound) = &algos[k];
        // SingleWaiter is only specified for one waiter.
        let waiters = if algo.name() == "single-waiter" {
            1
        } else {
            n_waiters
        };
        let sim = run_poll_heavy(algo.as_ref(), waiters, polls, model);
        let max_waiter = (0..waiters)
            .map(|i| sim.proc_stats(ProcId(i)).rmrs)
            .max()
            .unwrap_or(0);
        let participants = (0..=waiters)
            .filter(|&i| sim.proc_stats(ProcId(i)).steps > 0)
            .count()
            .max(1);
        E3Row {
            algorithm: algo.name().to_owned(),
            model: label,
            max_waiter_rmrs: max_waiter,
            signaler_rmrs: sim.proc_stats(ProcId(waiters)).rmrs,
            amortized: sim.totals().rmrs as f64 / participants as f64,
            paper_bound,
        }
    })
}

// ---------------------------------------------------------------- E4 ----

/// One row of E4: amortized adversarial cost as N grows, read/write
/// broadcast vs FAA queue.
#[derive(Clone, Debug)]
pub struct E4Row {
    /// Number of processes.
    pub n: usize,
    /// Amortized RMRs the adversary achieves against `broadcast`.
    pub broadcast_amortized: f64,
    /// Amortized RMRs the adversary achieves against `queue-faa`.
    pub queue_amortized: f64,
    /// Blocked erasures against the queue (> 0 = certification refused).
    pub queue_blocked: usize,
}

/// E4 — the primitive boundary of Corollary 6.14: under the same adversary,
/// broadcast's amortized cost grows ~linearly with N while the FAA queue's
/// stays flat, because erasure certification fails on FAA dependencies.
#[must_use]
pub fn e4_primitives(sizes: &[usize]) -> Vec<E4Row> {
    map_indexed(shm_pool::threads(), sizes.to_vec(), |_, n| {
        let b = run_lower_bound(&Broadcast, LowerBoundConfig::for_n(n));
        let q = run_lower_bound(&QueueSignaling, LowerBoundConfig::for_n(n));
        E4Row {
            n,
            broadcast_amortized: b.worst_amortized(),
            queue_amortized: q.worst_amortized(),
            queue_blocked: q.chase.as_ref().map_or(0, |c| c.blocked),
        }
    })
}

// ---------------------------------------------------------------- E5 ----

/// One row of E5: message accounting under one interconnect.
#[derive(Clone, Debug)]
pub struct E5Row {
    /// Workload label.
    pub workload: &'static str,
    /// Interconnect label.
    pub interconnect: &'static str,
    /// Seed of the workload's randomized scheduler; `None` for the scripted
    /// (seedless) signaling workload.
    pub seed: Option<u64>,
    /// Total RMRs.
    pub rmrs: u64,
    /// Total interconnect messages.
    pub messages: u64,
    /// Total cache invalidations.
    pub invalidations: u64,
    /// Messages per RMR.
    pub messages_per_rmr: f64,
}

/// E5 — §8's "exchange rate": the same executions priced under a shared
/// bus (messages ≈ RMRs), an ideal directory (messages ≈ RMRs +
/// invalidations, and invalidations ≤ RMRs), and a stateless broadcast
/// fabric (superfluous invalidation messages inflate the ratio).
#[must_use]
pub fn e5_messages(n: u32) -> Vec<E5Row> {
    let interconnects: [(&'static str, Interconnect); 3] = [
        ("bus", Interconnect::Bus),
        ("ideal-directory", Interconnect::IdealDirectory),
        ("stateless-broadcast", Interconnect::StatelessBroadcast),
    ];
    let rows = map_indexed(
        shm_pool::threads(),
        interconnects.to_vec(),
        |_, (ic_label, ic)| {
            let model = CostModel::Cc(CcConfig {
                interconnect: ic,
                ..Default::default()
            });
            // Workload 1: signaling, poll-heavy.
            let sim = run_poll_heavy(&CcFlag, n, 20, model);
            let t = sim.totals();
            let signaling = E5Row {
                workload: "signaling(cc-flag)",
                interconnect: ic_label,
                seed: None,
                rmrs: t.rmrs,
                messages: t.messages,
                invalidations: t.invalidations,
                messages_per_rmr: t.messages as f64 / t.rmrs.max(1) as f64,
            };
            // Workload 2: contended TTAS lock (write-heavy, invalidation
            // storms).
            let seed = 5;
            let r = run_lock_workload(
                &shm_mutex::TtasLock,
                &LockWorkloadConfig {
                    n: n as usize,
                    cycles: 4,
                    seed,
                    model,
                },
            );
            let t = r.totals;
            let mutex = E5Row {
                workload: "mutex(ttas)",
                interconnect: ic_label,
                seed: Some(seed),
                rmrs: t.rmrs,
                messages: t.messages,
                invalidations: t.invalidations,
                messages_per_rmr: t.messages as f64 / t.rmrs.max(1) as f64,
            };
            [signaling, mutex]
        },
    );
    rows.into_iter().flatten().collect()
}

// ---------------------------------------------------------------- E6 ----

/// One row of E6: a lock's RMR cost per passage in one model at one N.
#[derive(Clone, Debug)]
pub struct E6Row {
    /// Lock name.
    pub lock: String,
    /// Cost-model label.
    pub model: &'static str,
    /// Number of contenders.
    pub n: usize,
    /// Seed of the workload's randomized scheduler.
    pub seed: u64,
    /// Average RMRs per passage.
    pub rmrs_per_passage: f64,
}

/// E6 — the classical mutual-exclusion landscape on our simulator: local-
/// spin locks (MCS, tournament) cost the same in CC and DSM (O(1) and
/// O(log N)); Anderson is local-spin in CC only; TAS/TTAS grow with
/// contention in at least one model.
#[must_use]
pub fn e6_mutex(sizes: &[usize], cycles: u64) -> Vec<E6Row> {
    let locks: Vec<Box<dyn MutexAlgorithm>> = vec![
        Box::new(shm_mutex::TasLock),
        Box::new(shm_mutex::TtasLock),
        Box::new(shm_mutex::AndersonLock),
        Box::new(shm_mutex::McsLock),
        Box::new(shm_mutex::TournamentLock),
    ];
    let mut jobs = Vec::new();
    for &n in sizes {
        for k in 0..locks.len() {
            for (label, model) in [("cc", CostModel::cc_default()), ("dsm", CostModel::Dsm)] {
                jobs.push((n, k, label, model));
            }
        }
    }
    let locks = &locks;
    map_indexed(shm_pool::threads(), jobs, move |_, (n, k, label, model)| {
        let lock = &locks[k];
        let seed = 42;
        let r = run_lock_workload(
            lock.as_ref(),
            &LockWorkloadConfig {
                n,
                cycles,
                seed,
                model,
            },
        );
        assert!(r.completed, "{} n={n} {label}", lock.name());
        assert_eq!(r.violations, Vec::new(), "{} n={n} {label}", lock.name());
        E6Row {
            lock: lock.name().to_owned(),
            model: label,
            n,
            seed,
            rmrs_per_passage: r.rmrs_per_passage(),
        }
    })
}

// ---------------------------------------------------------------- E7 ----

/// One row of E7: signaler cost for a fully participating fixed waiter set.
#[derive(Clone, Debug)]
pub struct E7Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of fixed waiters (all participating).
    pub w: usize,
    /// Signaler RMRs in a solo `Signal()`.
    pub signaler_rmrs: u64,
    /// Amortized RMRs over W+1 participants.
    pub amortized: f64,
}

/// E7 — the §7 Ω(W) bound: when all W fixed waiters participate, the
/// signaler performs at least W−1 remote writes; our algorithms meet the
/// bound with small constants.
#[must_use]
pub fn e7_fixed_w(sizes: &[usize]) -> Vec<E7Row> {
    let mut jobs = Vec::new();
    for &w in sizes {
        for k in 0..4 {
            jobs.push((w, k));
        }
    }
    map_indexed(shm_pool::threads(), jobs, |_, (w, k)| {
        let fixed: Vec<ProcId> = (0..w as u32).map(ProcId).collect();
        let algo: Box<dyn SignalingAlgorithm> = match k {
            0 => Box::new(FixedWaiters::eager(fixed)),
            1 => Box::new(FixedWaiters::awaiting(fixed, ProcId(w as u32))),
            2 => Box::new(Broadcast),
            _ => Box::new(QueueSignaling),
        };
        let cost = fixed_waiters_signaler_cost(algo.as_ref(), w);
        assert_eq!(cost.post_spec, Ok(()), "{} w={w}", algo.name());
        E7Row {
            algorithm: algo.name().to_owned(),
            w,
            signaler_rmrs: cost.signaler_rmrs,
            amortized: cost.amortized,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_cc_constant_dsm_linear() {
        let rows = e1_cc_upper(&[4, 16], 10);
        for r in &rows {
            if r.model.starts_with("cc") {
                assert!(r.max_rmrs_per_proc <= 3, "{r:?}");
            } else {
                assert!(r.max_rmrs_per_proc >= 10, "{r:?}");
            }
        }
    }

    #[test]
    fn e4_gap_grows() {
        let rows = e4_primitives(&[16, 64]);
        assert!(rows[1].broadcast_amortized > rows[0].broadcast_amortized);
        for r in &rows {
            assert!(r.queue_amortized < 8.0, "{r:?}");
            assert!(r.queue_blocked > 0, "{r:?}");
        }
    }

    #[test]
    fn e5_bus_is_at_par_and_invalidations_bounded() {
        let rows = e5_messages(8);
        for r in &rows {
            assert!(r.invalidations <= r.rmrs, "{r:?}");
            if r.interconnect == "bus" {
                assert!(r.messages_per_rmr <= 2.0, "{r:?}");
            }
        }
    }

    #[test]
    fn e7_signaler_meets_omega_w() {
        let rows = e7_fixed_w(&[8, 16]);
        for r in &rows {
            assert!(r.signaler_rmrs + 1 >= r.w as u64, "{r:?}");
        }
    }

    #[test]
    fn e10_catches_every_control_variant_beyond_exhaustive_reach() {
        // One size and the full algorithm set; the bin and the CI pct job
        // run n ∈ {8, 16, 32} in release.
        let rows = e10_pct(&[8], 2, 0xE10);
        assert_eq!(rows.len(), 16);
        for r in &rows {
            assert_eq!(r.schedules, E10_SCHEDULES, "{r:?}");
            assert!(r.terminals > 0, "{r:?}");
            // End-state fingerprints can all coincide (order-dependent
            // verdicts are invisible in state), but never be absent.
            assert!(r.distinct_fingerprints > 0, "{r:?}");
            if r.algorithm == "seeded-buggy" {
                assert!(
                    r.violations_in_contract > 0,
                    "negative control missed: {r:?}"
                );
                assert!(r.counterexample.is_some(), "{r:?}");
            } else {
                assert_eq!(r.violations_in_contract, 0, "{r:?}");
            }
        }
    }

    #[test]
    fn e9_certifies_shipped_algorithms_and_catches_the_control() {
        // Small poll budget keeps the debug-mode sweep fast; the bin and the
        // CI explore job run the full budget (and the chase dominance check)
        // in release.
        let rows = e9_explore(2, 1);
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(r.exhaustive, "{r:?}");
            assert!(r.terminals > 0, "{r:?}");
            if r.algorithm == "seeded-buggy" {
                assert!(
                    r.violations_in_contract > 0,
                    "negative control missed: {r:?}"
                );
                assert!(r.counterexample.is_some());
                assert_eq!(r.seed, Some(1));
            } else {
                assert_eq!(r.violations_in_contract, 0, "{r:?}");
            }
        }
    }
}

// ---------------------------------------------------------------- E8 ----

/// One row of E8: the Corollary 6.14 transformation pipeline at one N.
#[derive(Clone, Debug)]
pub struct E8Row {
    /// Algorithm variant.
    pub variant: String,
    /// Number of processes.
    pub n: usize,
    /// Whether Part 1 stabilized within the round budget.
    pub stabilized: bool,
    /// Stable survivors.
    pub stable: usize,
    /// Worst amortized RMRs achieved by the adversary.
    pub amortized: f64,
    /// Chase erasures blocked by certification.
    pub blocked: usize,
    /// Whether the solo signaler failed to complete (busy-waiting).
    pub signal_stuck: bool,
    /// Differential-audit verdict: `None` when auditing was off, otherwise
    /// whether every audited phase matched the naive reference executor.
    pub audit_clean: Option<bool>,
    /// Deterministic counter totals for this row (canonical JSON object),
    /// recorded only when an `shm-obs` collector is installed.
    pub obs: Option<String>,
    /// Per-phase wall-clock (record / rounds / chase / discovery).
    pub timings: PhaseTimings,
}

/// E8 — Corollary 6.14: comparison primitives do not escape the bound.
/// Attacks the CAS-scan algorithm natively, after the read/write
/// transformation (mutex-emulated CAS), and the FAA queue as the contrast
/// that *does* escape.
#[must_use]
pub fn e8_transformation(sizes: &[usize]) -> Vec<E8Row> {
    e8_transformation_with(sizes, false)
}

/// [`e8_transformation`] with the differential audit optionally enabled.
#[must_use]
pub fn e8_transformation_with(sizes: &[usize], audit: bool) -> Vec<E8Row> {
    use rmr_adversary::{Part1Config, ReadWriteTransformed};
    use signaling::algorithms::CasList;
    let mut jobs = Vec::new();
    for &n in sizes {
        for k in 0..3 {
            jobs.push((n, k));
        }
    }
    map_indexed(shm_pool::threads(), jobs, |_, (n, k)| {
        let mark = shm_obs::totals_mark();
        let mut cfg = LowerBoundConfig::for_n(n);
        cfg.part1 = Part1Config {
            n,
            max_rounds: 64,
            audit,
            ..Part1Config::default()
        };
        let (variant, algo): (String, Box<dyn SignalingAlgorithm>) = match k {
            0 => ("cas-list".into(), Box::new(CasList)),
            1 => (
                "cas-list+rw".into(),
                Box::new(ReadWriteTransformed::new(Box::new(CasList))),
            ),
            _ => ("queue-faa".into(), Box::new(QueueSignaling)),
        };
        let r = run_lower_bound(algo.as_ref(), cfg);
        let signal_stuck = r.chase.as_ref().is_some_and(|c| !c.signal_completed)
            || r.discovery.as_ref().is_some_and(|d| !d.signal_completed);
        E8Row {
            variant,
            n,
            stabilized: r.part1.stabilized,
            stable: r.part1.stable.len(),
            amortized: r.worst_amortized(),
            blocked: r.part1.blocked_erasures + r.chase.as_ref().map_or(0, |c| c.blocked),
            signal_stuck,
            audit_clean: r.audit_clean(),
            obs: mark.map(|m| m.delta_json()),
            timings: r.timings,
        }
    })
}

// ---------------------------------------------------------------- E9 ----

/// One row of E9: exhaustive schedule-space exploration of one algorithm
/// under one cost model at small n.
#[derive(Clone, Debug)]
pub struct E9Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Cost-model label.
    pub model: &'static str,
    /// Number of processes (waiters + the signaler).
    pub n: usize,
    /// Seed of the seeded component of the scenario (the seeded-buggy
    /// negative control); `None` for the deterministic shipped algorithms —
    /// exploration itself is seedless.
    pub seed: Option<u64>,
    /// States expanded.
    pub explored: u64,
    /// Terminal (all-processes-done) states reached.
    pub terminals: u64,
    /// Whether no bound cut any branch — a clean verdict is then a proof at
    /// this scenario size.
    pub exhaustive: bool,
    /// Violating states found (per reaching path).
    pub violations_found: u64,
    /// Violations within the algorithm's participation contract.
    pub violations_in_contract: u64,
    /// Empirical maximum of the signaler's RMRs over all complete schedules.
    pub max_signaler_rmrs: u64,
    /// The §6 adversary's constructed chase cost at the same n (DSM rows of
    /// the E2 algorithms only). The chase is one reachable schedule, so the
    /// explored maximum must dominate this.
    pub chase_signaler_rmrs: Option<u64>,
    /// Peak number of nodes ever queued in the breadth-first frontier
    /// (hot + spilled; a logical count, thread-count independent).
    pub peak_frontier: u64,
    /// Peak logical bytes of visited-store residency, summed over walkers
    /// (deterministic slot accounting, never an RSS reading).
    pub peak_visited_bytes: u64,
    /// Delta-compressed bytes spilled to disk (0 unless a `mem_budget`
    /// forced spilling).
    pub spilled_bytes: u64,
    /// The first violation, shrunk and audited, as a canonical JSON object.
    pub counterexample: Option<String>,
    /// Deterministic counter totals for this row (canonical JSON object),
    /// recorded only when an `shm-obs` collector is installed.
    pub obs: Option<String>,
}

/// E9 — bounded model checking as an experiment: exhaustively explores every
/// schedule of each shipped signaling algorithm (plus the seeded-buggy
/// negative control) at n = `waiters`+1 under both cost models, certifying
/// Specification 4.1 within each algorithm's participation contract and
/// measuring the true maximum of the signaler's RMRs. On the DSM rows of the
/// E2 algorithms the row also runs the §6 wild-goose-chase adversary at the
/// same n: its constructed cost is a lower bound on the reachable maximum,
/// so `max_signaler_rmrs >= chase_signaler_rmrs` cross-validates both layers.
#[must_use]
pub fn e9_explore(waiters: usize, max_polls: u64) -> Vec<E9Row> {
    e9_explore_with(waiters, max_polls, None)
}

/// [`e9_explore`] under an exploration memory budget
/// ([`shm_explore::Bounds::mem_budget`]): the visited store and frontier
/// spill delta-compressed runs to disk beyond it. Every verdict, count,
/// maximum, and counterexample is byte-identical to the unbudgeted run —
/// only the memory-trajectory fields (`peak_*`, `spilled_bytes`) move.
#[must_use]
pub fn e9_explore_with(waiters: usize, max_polls: u64, mem_budget: Option<usize>) -> Vec<E9Row> {
    use shm_explore::{check, Bounds, ScenarioSpec};
    use signaling::algorithms::{CasList, SeededBuggy};
    let algos: Vec<(Box<dyn SignalingAlgorithm>, Option<u64>)> = vec![
        (Box::new(Broadcast), None),
        (Box::new(CcFlag), None),
        (Box::new(SingleWaiter), None),
        (Box::new(QueueSignaling), None),
        (Box::new(CasList), None),
        (Box::new(SeededBuggy::new(1)), Some(1)),
    ];
    // Where the §6 adversary runs: the four E2 algorithms, under DSM.
    let chase_algos = ["broadcast", "cc-flag", "single-waiter", "queue-faa"];
    let mut jobs = Vec::new();
    for k in 0..algos.len() {
        for (label, model) in [("dsm", CostModel::Dsm), ("cc", CostModel::cc_default())] {
            jobs.push((k, label, model));
        }
    }
    let algos = &algos;
    map_indexed(shm_pool::threads(), jobs, move |_, (k, label, model)| {
        let mark = shm_obs::totals_mark();
        let (algo, seed) = &algos[k];
        let scenario = ScenarioSpec {
            algorithm: algo.as_ref(),
            waiters,
            max_polls,
            // The chase's signaler polls before it signals (those polls count
            // toward its RMRs), so the explored space must admit the same
            // pre-poll for the maxima to be comparable.
            signaler_polls_first: 1,
            model,
            seed: *seed,
        };
        let bounds = Bounds {
            mem_budget,
            ..Bounds::exhaustive()
        };
        let out = check(&scenario, &bounds);
        let chase = (label == "dsm" && chase_algos.contains(&algo.name())).then(|| {
            let r = run_lower_bound(algo.as_ref(), LowerBoundConfig::for_n(scenario.n()));
            r.chase.as_ref().map_or(0, |c| c.signaler_rmrs)
        });
        e9_row(&scenario, label, &out, chase, mark)
    })
}

/// Packs a check outcome into an [`E9Row`] (shared by the sweep and the
/// deep row).
fn e9_row(
    scenario: &shm_explore::ScenarioSpec<'_>,
    label: &'static str,
    out: &shm_explore::CheckOutcome,
    chase: Option<u64>,
    mark: Option<shm_obs::TotalsMark>,
) -> E9Row {
    E9Row {
        algorithm: scenario.algorithm.name().to_owned(),
        model: label,
        n: scenario.n(),
        seed: scenario.seed,
        explored: out.report.explored,
        terminals: out.report.terminals,
        exhaustive: out.report.exhaustive,
        violations_found: out.report.violations_found,
        violations_in_contract: out.in_contract_violations,
        max_signaler_rmrs: out.max_signaler_rmrs().unwrap_or(0),
        chase_signaler_rmrs: chase,
        peak_frontier: out.report.peak_frontier,
        peak_visited_bytes: out.report.peak_visited_bytes,
        spilled_bytes: out.report.spilled_bytes,
        counterexample: out
            .counterexample
            .as_ref()
            .map(shm_explore::Counterexample::to_json),
        obs: mark.map(|m| m.delta_json()),
    }
}

/// The E9 deep row's scenario size: 3 waiters + the signaler.
pub const E9_DEEP_WAITERS: usize = 3;
/// The E9 deep row's per-waiter poll budget.
pub const E9_DEEP_MAX_POLLS: u64 = 1;

/// The E9 **deep row**: one algorithm (single-waiter — the largest state
/// space among the shipped algorithms at equal n) × DSM at n = 4,
/// exhaustive. This is the row the in-memory explorer could not afford:
/// run under a `mem_budget` (and, in CI, a hard address-space cap) it
/// certifies Specification 4.1 and the true signaler-RMR maximum one size
/// deeper than the E9 sweep, with the visited set and frontier spilled to
/// compressed disk runs. The chase cross-check runs at the same n, exactly
/// like the sweep rows.
#[must_use]
pub fn e9_deep(mem_budget: Option<usize>) -> Vec<E9Row> {
    use shm_explore::{check, Bounds, ScenarioSpec};
    let mark = shm_obs::totals_mark();
    let algo = SingleWaiter;
    let scenario = ScenarioSpec {
        algorithm: &algo,
        waiters: E9_DEEP_WAITERS,
        max_polls: E9_DEEP_MAX_POLLS,
        signaler_polls_first: 1,
        model: CostModel::Dsm,
        seed: None,
    };
    let bounds = Bounds {
        mem_budget,
        ..Bounds::exhaustive()
    };
    let out = check(&scenario, &bounds);
    let chase = {
        let r = run_lower_bound(&algo, LowerBoundConfig::for_n(scenario.n()));
        Some(r.chase.as_ref().map_or(0, |c| c.signaler_rmrs))
    };
    vec![e9_row(&scenario, "dsm", &out, chase, mark)]
}

// --------------------------------------------------------------- E10 ----

/// One row of E10: seeded PCT sampling of one algorithm under one cost
/// model at adversary scale.
#[derive(Clone, Debug)]
pub struct E10Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Cost-model label.
    pub model: &'static str,
    /// Number of processes (waiters + the signaler).
    pub n: usize,
    /// Seed of the seeded component of the scenario (the seeded-buggy
    /// negative-control variants); `None` for the shipped algorithms.
    pub seed: Option<u64>,
    /// Base sampling seed (per-schedule seeds derive from it by index).
    pub pct_seed: u64,
    /// Schedules sampled.
    pub schedules: u64,
    /// PCT bug depth `d` (`d − 1` priority-change points per schedule).
    pub depth_d: usize,
    /// Per-schedule step budget.
    pub steps_budget: u64,
    /// Schedules that ran every process to termination.
    pub terminals: u64,
    /// Distinct end-state fingerprints across sampled schedules.
    pub distinct_fingerprints: u64,
    /// Schedules whose end state violated the polling spec.
    pub violations_found: u64,
    /// Violations within the algorithm's participation contract.
    pub violations_in_contract: u64,
    /// Empirical maximum of the signaler's RMRs over terminal schedules.
    pub max_signaler_rmrs: u64,
    /// Peak logical bytes of the fingerprint coverage set (deterministic
    /// slot accounting, never an RSS reading).
    pub peak_visited_bytes: u64,
    /// Delta-compressed bytes the coverage set spilled to disk (0 unless a
    /// `mem_budget` forced spilling).
    pub spilled_bytes: u64,
    /// The first violation, shrunk and audited, as a canonical JSON object.
    pub counterexample: Option<String>,
    /// Deterministic counter totals for this row (canonical JSON object),
    /// recorded only when an `shm-obs` collector is installed.
    pub obs: Option<String>,
}

/// The documented E10 budget: schedules per (algorithm, model, n) row and
/// the PCT depth/step parameters. The negative-control guarantee tests and
/// the CI `pct` job hold the experiment to exactly this budget.
pub const E10_SCHEDULES: u64 = 256;
/// PCT bug depth used by E10 (two priority-change points per schedule).
pub const E10_DEPTH_D: usize = 3;
/// Per-schedule step budget used by E10 (generous: give-up bounds end the
/// sampled runs far earlier at every E10 size).
pub const E10_STEPS: u64 = 20_000;

/// E10 — seeded PCT exploration at adversary scale: samples
/// [`E10_SCHEDULES`] priority schedules per row for every shipped signaling
/// algorithm (plus all three seeded-buggy negative-control variants) at
/// n = `waiters`+1 for each entry of `sizes`, under both cost models —
/// sizes far beyond exhaustive reach, where the §6 sweeps actually run.
/// Each end state is judged by the Specification 4.1 oracle and violations
/// go through the same shrink → audit pipeline as E9's. Deterministic at
/// any thread count for a fixed `pct_seed`.
#[must_use]
pub fn e10_pct(sizes: &[usize], max_polls: u64, pct_seed: u64) -> Vec<E10Row> {
    e10_pct_with(sizes, max_polls, pct_seed, None)
}

/// [`e10_pct`] under an exploration memory budget: the end-state
/// fingerprint coverage set spills delta-compressed runs to disk beyond
/// it. `distinct_fingerprints` and every verdict are identical at any
/// budget — only `peak_visited_bytes`/`spilled_bytes` move.
#[must_use]
pub fn e10_pct_with(
    sizes: &[usize],
    max_polls: u64,
    pct_seed: u64,
    mem_budget: Option<usize>,
) -> Vec<E10Row> {
    use shm_explore::{check_random, RandomBounds, ScenarioSpec};
    use signaling::algorithms::{CasList, SeededBuggy};
    let algos: Vec<(Box<dyn SignalingAlgorithm>, Option<u64>)> = vec![
        (Box::new(Broadcast), None),
        (Box::new(CcFlag), None),
        (Box::new(SingleWaiter), None),
        (Box::new(QueueSignaling), None),
        (Box::new(CasList), None),
        (Box::new(SeededBuggy::new(0)), Some(0)),
        (Box::new(SeededBuggy::new(1)), Some(1)),
        (Box::new(SeededBuggy::new(2)), Some(2)),
    ];
    let mut jobs = Vec::new();
    for &waiters in sizes {
        for k in 0..algos.len() {
            for (label, model) in [("dsm", CostModel::Dsm), ("cc", CostModel::cc_default())] {
                jobs.push((waiters, k, label, model));
            }
        }
    }
    let algos = &algos;
    map_indexed(
        shm_pool::threads(),
        jobs,
        move |_, (waiters, k, label, model)| {
            let mark = shm_obs::totals_mark();
            let (algo, seed) = &algos[k];
            let scenario = ScenarioSpec {
                algorithm: algo.as_ref(),
                waiters,
                max_polls,
                signaler_polls_first: 1,
                model,
                seed: *seed,
            };
            let bounds = RandomBounds {
                mem_budget,
                ..RandomBounds::pct(pct_seed, E10_SCHEDULES, E10_DEPTH_D, E10_STEPS)
            };
            let out = check_random(&scenario, &bounds);
            E10Row {
                algorithm: algo.name().to_owned(),
                model: label,
                n: scenario.n(),
                seed: *seed,
                pct_seed,
                schedules: out.report.schedules_run,
                depth_d: bounds.depth_d,
                steps_budget: bounds.steps,
                terminals: out.report.terminals,
                distinct_fingerprints: out.report.distinct_fingerprints,
                violations_found: out.report.violations_found,
                violations_in_contract: out.in_contract_violations,
                max_signaler_rmrs: out.max_signaler_rmrs().unwrap_or(0),
                peak_visited_bytes: out.report.peak_visited_bytes,
                spilled_bytes: out.report.spilled_bytes,
                counterexample: out
                    .counterexample
                    .as_ref()
                    .map(shm_explore::Counterexample::to_json),
                obs: mark.map(|m| m.delta_json()),
            }
        },
    )
}
