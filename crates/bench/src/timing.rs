//! Minimal wall-clock bench harness.
//!
//! The workspace is dependency-free (no criterion), so the `benches/`
//! binaries are plain `harness = false` mains built on this module: warm up
//! once, run a fixed iteration count, report mean/min/max. Deterministic
//! workloads make this adequate for the regressions the benches guard —
//! order-of-magnitude engine changes, not microarchitectural noise.

use std::time::Instant;

/// Timing summary of one benchmark case.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Case label, e.g. `lower_bound/broadcast/64`.
    pub label: String,
    /// Measured iterations (excluding the warmup run).
    pub iters: u32,
    /// Mean wall-clock milliseconds per iteration.
    pub mean_ms: f64,
    /// Fastest iteration.
    pub min_ms: f64,
    /// Slowest iteration.
    pub max_ms: f64,
}

/// Runs `f` once to warm up, then `iters` measured times.
pub fn bench<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) -> BenchResult {
    assert!(iters > 0, "bench needs at least one iteration");
    let _warmup = f();
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    let mut total = 0.0f64;
    for _ in 0..iters {
        let t = Instant::now();
        let out = f();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&out);
        min = min.min(ms);
        max = max.max(ms);
        total += ms;
    }
    BenchResult {
        label: label.to_owned(),
        iters,
        mean_ms: total / f64::from(iters),
        min_ms: min,
        max_ms: max,
    }
}

/// Prints one result line in a stable, grep-friendly format.
pub fn report(r: &BenchResult) {
    println!(
        "{:<44} {:>10.3} ms/iter  (min {:>9.3}, max {:>9.3}, n={})",
        r.label, r.mean_ms, r.min_ms, r.max_ms, r.iters
    );
}
