//! Minimal wall-clock bench harness.
//!
//! The workspace is dependency-free (no criterion), so the `benches/`
//! binaries are plain `harness = false` mains built on this module: warm up
//! once, run a fixed iteration count, report mean/median/min/max.
//! Deterministic workloads make this adequate for the regressions the
//! benches guard — order-of-magnitude engine changes, not microarchitectural
//! noise.

use std::time::Instant;

/// Timing summary of one benchmark case.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Case label, e.g. `lower_bound/broadcast/64`.
    pub label: String,
    /// Measured iterations (excluding any warmup run).
    pub iters: u32,
    /// Mean wall-clock milliseconds per iteration.
    pub mean_ms: f64,
    /// Median wall-clock milliseconds per iteration.
    pub median_ms: f64,
    /// Fastest iteration.
    pub min_ms: f64,
    /// Slowest iteration.
    pub max_ms: f64,
}

/// Runs `f` once to warm up, then `iters` measured times.
///
/// With `iters == 1` the warmup run is skipped: a single-shot case (e.g. an
/// audited adversary run) would otherwise pay its full construction twice,
/// and a one-iteration measurement gains nothing from a warm cache.
pub fn bench<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) -> BenchResult {
    assert!(iters > 0, "bench needs at least one iteration");
    if iters > 1 {
        let _warmup = f();
    }
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        let out = f();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&out);
        samples.push(ms);
    }
    let total: f64 = samples.iter().sum();
    let mut sorted = samples.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    let median = if sorted.len() % 2 == 0 {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    };
    BenchResult {
        label: label.to_owned(),
        iters,
        mean_ms: total / f64::from(iters),
        median_ms: median,
        min_ms: sorted[0],
        max_ms: sorted[sorted.len() - 1],
    }
}

/// One result as a JSON object with a stable key order. `iters` is always
/// present so a reader can tell a single-shot measurement (no warmup, no
/// spread) from an averaged one.
#[must_use]
pub fn json_row(r: &BenchResult) -> String {
    format!(
        concat!(
            "{{\"label\": \"{}\", \"iters\": {}, \"mean_ms\": {:.3}, ",
            "\"median_ms\": {:.3}, \"min_ms\": {:.3}, \"max_ms\": {:.3}}}"
        ),
        r.label.replace('\\', "\\\\").replace('"', "\\\""),
        r.iters,
        r.mean_ms,
        r.median_ms,
        r.min_ms,
        r.max_ms,
    )
}

/// Prints one result line in a stable, grep-friendly format.
pub fn report(r: &BenchResult) {
    println!(
        "{:<44} {:>10.3} ms/iter  (median {:>9.3}, min {:>9.3}, max {:>9.3}, n={})",
        r.label, r.mean_ms, r.median_ms, r.min_ms, r.max_ms, r.iters
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn single_iteration_skips_warmup() {
        let calls = AtomicU32::new(0);
        let r = bench("one", 1, || calls.fetch_add(1, Ordering::SeqCst));
        assert_eq!(calls.load(Ordering::SeqCst), 1, "no warmup at iters == 1");
        assert_eq!(r.iters, 1);
        assert_eq!(r.median_ms, r.min_ms);
        assert_eq!(r.median_ms, r.max_ms);
    }

    #[test]
    fn json_row_reports_iters_and_stable_keys() {
        let r = BenchResult {
            label: "lower_bound/\"q\"/64".into(),
            iters: 1,
            mean_ms: 1.25,
            median_ms: 1.25,
            min_ms: 1.25,
            max_ms: 1.25,
        };
        assert_eq!(
            json_row(&r),
            concat!(
                "{\"label\": \"lower_bound/\\\"q\\\"/64\", \"iters\": 1, ",
                "\"mean_ms\": 1.250, \"median_ms\": 1.250, ",
                "\"min_ms\": 1.250, \"max_ms\": 1.250}"
            )
        );
    }

    #[test]
    fn multi_iteration_warms_up_and_orders_stats() {
        let calls = AtomicU32::new(0);
        let r = bench("five", 5, || calls.fetch_add(1, Ordering::SeqCst));
        assert_eq!(calls.load(Ordering::SeqCst), 6, "warmup + 5 measured");
        assert!(r.min_ms <= r.median_ms && r.median_ms <= r.max_ms);
        assert!(r.min_ms <= r.mean_ms && r.mean_ms <= r.max_ms);
    }
}
