//! # bench: experiment harness regenerating every claim of the paper
//!
//! The paper is a theory paper — its "evaluation" is a set of proved bounds
//! rather than measured tables. Each experiment here renders one claim as a
//! measured table on the simulator (the experiment ↔ claim map lives in
//! `DESIGN.md`; measured-vs-paper commentary in `EXPERIMENTS.md`):
//!
//! | ID | Claim | Function |
//! |----|-------|----------|
//! | E1 | §5: CC upper bound — O(1) RMRs/process, wait-free, reads/writes | [`e1_cc_upper`] |
//! | E2 | §6: DSM lower bound — amortized RMRs exceed any constant | [`e2_dsm_lower`] |
//! | E3 | §7: variant upper bounds | [`e3_variants`] |
//! | E4 | §6/§7 boundary: FAA escapes the bound, CAS does not | [`e4_primitives`] |
//! | E5 | §8: RMRs vs interconnect messages | [`e5_messages`] |
//! | E6 | §3/§8 context: mutual exclusion RMRs agree across models | [`e6_mutex`] |
//! | E7 | §7: Ω(W) signaler cost for fixed waiters | [`e7_fixed_w`] |
//! | E8 | Corollary 6.14: CAS (native or transformed to reads/writes) stays bounded by the adversary; FAA escapes | [`e8_transformation`] |
//! | E9 | Spec 4.1 certified over *every* schedule at small n; explored RMR maximum dominates the §6 chase cost | [`e9_explore`] |
//!
//! Every function returns structured rows (so the integration tests assert
//! on them) and the `exp_*` binaries print them as tables. The adversary
//! experiments have `*_with(sizes, audit)` variants that additionally run
//! the differential RMR audit ([`shm_sim::Simulator::audit`]) over every
//! phase; the `exp_e2_dsm_lower` / `exp_e8_transformation` binaries expose
//! this as `--audit` and exit nonzero on any divergence.
//!
//! Sweeps fan their rows out over the in-tree work-stealing pool
//! (re-exported as [`pool`]) and merge results by submission index, so
//! tables and JSON are byte-identical at every thread count. Thread count:
//! `--threads N` on the binaries, the `CC_DSM_THREADS` environment variable,
//! or available parallelism, in that precedence; `1` is the exact serial
//! path. [`canon`] renders rows as canonical (timing-free) JSON for
//! byte-equality checks across thread counts.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod canon;
pub mod cli;
pub mod experiments;
pub mod table;
pub mod timing;

/// The dependency-free scoped work-stealing pool the sweeps run on.
pub use shm_pool as pool;

pub use experiments::*;
