//! Raw simulator throughput: steps per second for a busy-wait workload,
//! plus clone and replay cost.

use bench::timing::{bench, report};
use shm_sim::*;
use std::sync::Arc;

fn spin_spec(n: usize, model: CostModel) -> SimSpec {
    let mut layout = MemLayout::new();
    let flag = layout.alloc_global(0);
    let sources = (0..n)
        .map(|_| {
            let poll = ScriptedCall::new(
                CallKind(1),
                "poll",
                Arc::new(move || {
                    Box::new(OpSequence::new(vec![Op::Read(flag)])) as Box<dyn ProcedureCall>
                }),
            );
            Box::new(RepeatUntil::new(poll, 1)) as Box<dyn CallSource>
        })
        .collect();
    SimSpec {
        layout,
        sources,
        model,
    }
}

fn main() {
    println!("sim_steps: 10k steps of a busy-wait workload");
    for (label, model) in [("dsm", CostModel::Dsm), ("cc", CostModel::cc_default())] {
        for n in [16usize, 256] {
            let spec = spin_spec(n, model);
            let r = bench(&format!("sim_steps/{label}/{n}"), 20, || {
                let mut sim = Simulator::new(&spec);
                let mut sched = RoundRobin::new();
                shm_sim::run(&mut sim, &mut sched, 10_000)
            });
            report(&r);
        }
    }

    let spec = spin_spec(64, CostModel::Dsm);
    let mut sim = Simulator::new(&spec);
    let mut sched = RoundRobin::new();
    shm_sim::run(&mut sim, &mut sched, 20_000);
    let r = bench("sim_clone_64procs_20ksteps", 50, || sim.clone());
    report(&r);
    let schedule = sim.schedule().to_vec();
    let erased = std::collections::BTreeSet::new();
    let r = bench("sim_replay_64procs_20ksteps", 20, || {
        Simulator::replay(&spec, &schedule, &erased)
    });
    report(&r);
}
