//! Raw simulator throughput: steps per second for a busy-wait workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shm_sim::*;
use std::sync::Arc;

fn spin_spec(n: usize, model: CostModel) -> SimSpec {
    let mut layout = MemLayout::new();
    let flag = layout.alloc_global(0);
    let sources = (0..n)
        .map(|_| {
            let poll = ScriptedCall::new(
                CallKind(1),
                "poll",
                Arc::new(move || {
                    Box::new(OpSequence::new(vec![Op::Read(flag)])) as Box<dyn ProcedureCall>
                }),
            );
            Box::new(RepeatUntil::new(poll, 1)) as Box<dyn CallSource>
        })
        .collect();
    SimSpec { layout, sources, model }
}

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_steps");
    for (label, model) in [("dsm", CostModel::Dsm), ("cc", CostModel::cc_default())] {
        for n in [16usize, 256] {
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &n,
                |b, &n| {
                    let spec = spin_spec(n, model);
                    b.iter(|| {
                        let mut sim = Simulator::new(&spec);
                        let mut sched = RoundRobin::new();
                        shm_sim::run(&mut sim, &mut sched, 10_000)
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_clone_and_replay(c: &mut Criterion) {
    let spec = spin_spec(64, CostModel::Dsm);
    let mut sim = Simulator::new(&spec);
    let mut sched = RoundRobin::new();
    shm_sim::run(&mut sim, &mut sched, 20_000);
    c.bench_function("sim_clone_64procs_20ksteps", |b| b.iter(|| sim.clone()));
    let schedule = sim.schedule().to_vec();
    let erased = std::collections::BTreeSet::new();
    c.bench_function("sim_replay_64procs_20ksteps", |b| {
        b.iter(|| Simulator::replay(&spec, &schedule, &erased))
    });
}

criterion_group!(benches, bench_steps, bench_clone_and_replay);
criterion_main!(benches);
