//! Lock workload cost (E6 engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shm_mutex::{run_lock_workload, LockWorkloadConfig, MutexAlgorithm};
use shm_sim::CostModel;

fn bench_locks(c: &mut Criterion) {
    let locks: Vec<Box<dyn MutexAlgorithm>> = vec![
        Box::new(shm_mutex::TasLock),
        Box::new(shm_mutex::TtasLock),
        Box::new(shm_mutex::AndersonLock),
        Box::new(shm_mutex::McsLock),
        Box::new(shm_mutex::TournamentLock),
    ];
    let mut group = c.benchmark_group("lock_workload_8x4");
    for lock in &locks {
        for (label, model) in [("cc", CostModel::cc_default()), ("dsm", CostModel::Dsm)] {
            group.bench_with_input(
                BenchmarkId::new(lock.name(), label),
                &model,
                |b, &model| {
                    b.iter(|| {
                        let r = run_lock_workload(
                            lock.as_ref(),
                            &LockWorkloadConfig { n: 8, cycles: 4, seed: 42, model },
                        );
                        assert!(r.completed);
                        r.totals.rmrs
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_locks);
criterion_main!(benches);
