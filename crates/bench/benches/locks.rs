//! Lock workload cost (E6 engine).

use bench::timing::{bench, report};
use shm_mutex::{run_lock_workload, LockWorkloadConfig, MutexAlgorithm};
use shm_sim::CostModel;

fn main() {
    let locks: Vec<Box<dyn MutexAlgorithm>> = vec![
        Box::new(shm_mutex::TasLock),
        Box::new(shm_mutex::TtasLock),
        Box::new(shm_mutex::AndersonLock),
        Box::new(shm_mutex::McsLock),
        Box::new(shm_mutex::TournamentLock),
    ];
    println!("lock_workload_8x4: n=8, cycles=4, seed=42");
    for lock in &locks {
        for (label, model) in [("cc", CostModel::cc_default()), ("dsm", CostModel::Dsm)] {
            let r = bench(
                &format!("lock_workload_8x4/{}/{label}", lock.name()),
                20,
                || {
                    let r = run_lock_workload(
                        lock.as_ref(),
                        &LockWorkloadConfig {
                            n: 8,
                            cycles: 4,
                            seed: 42,
                            model,
                        },
                    );
                    assert!(r.completed);
                    r.totals.rmrs
                },
            );
            report(&r);
        }
    }
}
