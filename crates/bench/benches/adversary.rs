//! Cost of the executable lower bound (E2/E4 engine).

use bench::timing::{bench, report};
use rmr_adversary::{run_lower_bound, LowerBoundConfig};
use signaling::algorithms::{Broadcast, QueueSignaling, SingleWaiter};
use signaling::SignalingAlgorithm;

fn main() {
    let algos: Vec<Box<dyn SignalingAlgorithm>> = vec![
        Box::new(Broadcast),
        Box::new(SingleWaiter),
        Box::new(QueueSignaling),
    ];
    println!("lower_bound: full Part1+Part2 pipeline (incremental replay engine)");
    for algo in &algos {
        for n in [32usize, 64] {
            let r = bench(&format!("lower_bound/{}/{n}", algo.name()), 10, || {
                run_lower_bound(algo.as_ref(), LowerBoundConfig::for_n(n))
            });
            report(&r);
        }
    }

    // Incremental engine vs the full-replay reference path at the largest
    // experiment size, asserting the adversary's observable outputs agree.
    println!("\nincremental vs full-replay reference at n=256 (identical RMR outputs asserted)");
    for algo in &algos {
        let n = 256usize;
        let inc = bench(&format!("incremental/{}/{n}", algo.name()), 3, || {
            run_lower_bound(algo.as_ref(), LowerBoundConfig::for_n(n))
        });
        report(&inc);
        let mut cfg = LowerBoundConfig::for_n(n);
        cfg.part1.incremental = false;
        let reference = bench(&format!("reference/{}/{n}", algo.name()), 3, || {
            run_lower_bound(algo.as_ref(), cfg)
        });
        report(&reference);
        let a = run_lower_bound(algo.as_ref(), LowerBoundConfig::for_n(n));
        let b = run_lower_bound(algo.as_ref(), cfg);
        assert_eq!(
            a.part1.stable,
            b.part1.stable,
            "{}: stable set",
            algo.name()
        );
        for (x, y) in [(&a.chase, &b.chase), (&a.discovery, &b.discovery)] {
            assert_eq!(
                x.as_ref().map(|r| (
                    r.signaler_rmrs,
                    r.erased.clone(),
                    r.blocked,
                    r.survivors,
                    r.signal_completed
                )),
                y.as_ref().map(|r| (
                    r.signaler_rmrs,
                    r.erased.clone(),
                    r.blocked,
                    r.survivors,
                    r.signal_completed
                )),
                "{}: chase/discovery outputs",
                algo.name()
            );
        }
        println!(
            "  {:<22} speedup {:.1}x",
            algo.name(),
            reference.mean_ms / inc.mean_ms
        );
    }
}
