//! Cost of the executable lower bound (E2/E4 engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmr_adversary::{run_lower_bound, LowerBoundConfig};
use signaling::algorithms::{Broadcast, QueueSignaling, SingleWaiter};
use signaling::SignalingAlgorithm;

fn bench_adversary(c: &mut Criterion) {
    let algos: Vec<Box<dyn SignalingAlgorithm>> =
        vec![Box::new(Broadcast), Box::new(SingleWaiter), Box::new(QueueSignaling)];
    let mut group = c.benchmark_group("lower_bound");
    group.sample_size(10);
    for algo in &algos {
        for n in [32usize, 64] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), n),
                &n,
                |b, &n| {
                    b.iter(|| run_lower_bound(algo.as_ref(), LowerBoundConfig::for_n(n)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_adversary);
criterion_main!(benches);
