//! How erasure cost scales with history length: full from-scratch
//! `Simulator::replay` versus the incremental `filtered_replay` /
//! `erase_certified` path at several checkpoint intervals.
//!
//! The erased victim is chosen to first step late in the recording, so the
//! incremental engine only replays a short suffix while the reference pays
//! for the whole history.

use bench::timing::{bench, report};
use shm_sim::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Mixed-op workload over shared and per-process cells (same family as the
/// `incremental_replay` determinism tests).
fn workload(n: usize, calls: usize, model: CostModel) -> SimSpec {
    let mut layout = MemLayout::new();
    let a = layout.alloc_global(0);
    let b = layout.alloc_global(5);
    let mine = layout.alloc_per_process_array(n, 0);
    let sources = (0..n)
        .map(|i| {
            let pid = ProcId(i as u32);
            let mut cs = Vec::new();
            for k in 0..calls {
                let ops = match (i + k) % 5 {
                    0 => vec![Op::Read(a), Op::Write(mine.at(pid.index()), k as Word)],
                    1 => vec![Op::Faa(a, 1), Op::Read(b)],
                    2 => vec![Op::Cas(b, 5, 6), Op::Read(mine.at(pid.index()))],
                    3 => vec![Op::Ll(b), Op::Sc(b, 9)],
                    _ => vec![Op::Tas(a), Op::Fas(b, 7)],
                };
                cs.push(ScriptedCall::new(
                    CallKind(k as u32),
                    "mix",
                    Arc::new(move || {
                        Box::new(OpSequence::new(ops.clone())) as Box<dyn ProcedureCall>
                    }),
                ));
            }
            Box::new(Script::new(cs)) as Box<dyn CallSource>
        })
        .collect();
    SimSpec {
        layout,
        sources,
        model,
    }
}

/// Record a run where processes enter in pid order, so high pids first touch
/// the execution late (the favourable — and, for the adversary, typical —
/// case for checkpointed replay).
fn record(spec: &SimSpec, n: usize, interval: usize) -> Simulator {
    let mut sim = Simulator::new(spec);
    if interval > 0 {
        sim.enable_checkpoints(interval);
    }
    for p in 0..n {
        let pid = ProcId(p as u32);
        while sim.status(pid) == Status::Runnable {
            sim.step(pid);
        }
    }
    sim
}

fn main() {
    println!("replay under one late erasure: full replay vs incremental engine");
    for n in [64usize, 128, 256] {
        let spec = workload(n, 6, CostModel::Dsm);
        let victim = ProcId(n as u32 - 1);
        let erased: BTreeSet<ProcId> = [victim].into_iter().collect();

        let reference = record(&spec, n, 0);
        let schedule = reference.schedule().to_vec();
        let r = bench(
            &format!("full_replay/n={n}/steps={}", schedule.len()),
            10,
            || Simulator::replay(&spec, &schedule, &erased),
        );
        report(&r);

        for interval in [64usize, 256] {
            let sim = record(&spec, n, interval);
            let r = bench(
                &format!("filtered_replay/n={n}/interval={interval}"),
                10,
                || sim.filtered_replay(&spec, &erased),
            );
            report(&r);
            let r = bench(
                &format!("erase_certified/n={n}/interval={interval}"),
                10,
                || sim.erase_certified(&spec, &erased),
            );
            report(&r);
        }
    }
}
