//! End-to-end scenario cost per signaling algorithm (E1/E3 workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shm_sim::{CostModel, ProcId, RoundRobin};
use signaling::algorithms::{Broadcast, CcFlag, FixedSignaler, QueueSignaling};
use signaling::{run_scenario, Role, Scenario, SignalingAlgorithm};

fn bench_scenarios(c: &mut Criterion) {
    let n = 64u32;
    let algos: Vec<Box<dyn SignalingAlgorithm>> = vec![
        Box::new(CcFlag),
        Box::new(Broadcast),
        Box::new(FixedSignaler { signaler: ProcId(n) }),
        Box::new(QueueSignaling),
    ];
    let mut group = c.benchmark_group("signaling_scenario_64w");
    for algo in &algos {
        for (label, model) in [("cc", CostModel::cc_default()), ("dsm", CostModel::Dsm)] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), label),
                &model,
                |b, &model| {
                    b.iter(|| {
                        let mut roles = vec![Role::waiter(); n as usize];
                        roles.push(Role::signaler());
                        let scenario = Scenario { algorithm: algo.as_ref(), roles, model };
                        let out = run_scenario(&scenario, &mut RoundRobin::new(), 10_000_000);
                        assert!(out.completed);
                        out.sim.totals().rmrs
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
