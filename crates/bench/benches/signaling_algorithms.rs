//! End-to-end scenario cost per signaling algorithm (E1/E3 workload).

use bench::timing::{bench, report};
use shm_sim::{CostModel, ProcId, RoundRobin};
use signaling::algorithms::{Broadcast, CcFlag, FixedSignaler, QueueSignaling};
use signaling::{run_scenario, Role, Scenario, SignalingAlgorithm};

fn main() {
    let n = 64u32;
    let algos: Vec<Box<dyn SignalingAlgorithm>> = vec![
        Box::new(CcFlag),
        Box::new(Broadcast),
        Box::new(FixedSignaler {
            signaler: ProcId(n),
        }),
        Box::new(QueueSignaling),
    ];
    println!("signaling_scenario_64w: 64 waiters + 1 signaler, round-robin");
    for algo in &algos {
        for (label, model) in [("cc", CostModel::cc_default()), ("dsm", CostModel::Dsm)] {
            let r = bench(
                &format!("signaling_scenario_64w/{}/{label}", algo.name()),
                20,
                || {
                    let mut roles = vec![Role::waiter(); n as usize];
                    roles.push(Role::signaler());
                    let scenario = Scenario {
                        algorithm: algo.as_ref(),
                        roles,
                        model,
                    };
                    let out = run_scenario(&scenario, &mut RoundRobin::new(), 10_000_000);
                    assert!(out.completed);
                    out.sim.totals().rmrs
                },
            );
            report(&r);
        }
    }
}
