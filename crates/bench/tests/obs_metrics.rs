//! Exactness contract of the RMR metrics: the counters `shm-obs` collects
//! are not approximations. A flushed run's `sim.rmr` / `sim.inval` cells
//! must equal the simulator's own `Totals` and per-process stats exactly,
//! and the audit's `audit.rmr` charges must equal an independent re-pricing
//! of the same execution under each standard cost model.

use shm_sim::{CcConfig, CostModel, Interconnect, ProcId, Protocol, Scripted, SimSpec, Simulator};
use signaling::algorithms::CcFlag;
use signaling::{Role, Scenario};
use std::sync::Mutex;

/// The obs recorder slot is process-global; tests installing collectors
/// must not overlap.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// A small poll-heavy signaling run (3 waiters + signaler) under `model`,
/// returning the finished simulator and its spec (for auditing).
fn poll_run(model: CostModel) -> (Simulator, SimSpec) {
    let n_waiters = 3u32;
    let mut roles = vec![Role::waiter(); n_waiters as usize];
    roles.push(Role::signaler());
    let scenario = Scenario {
        algorithm: &CcFlag,
        roles,
        model,
    };
    let spec: SimSpec = scenario.build();
    let mut sim = Simulator::new(&spec);
    let mut order = Vec::new();
    for _ in 0..5 {
        for w in 0..n_waiters {
            order.extend(std::iter::repeat_n(ProcId(w), 10));
        }
    }
    for p in 0..=n_waiters {
        order.extend(std::iter::repeat_n(ProcId(p), 4 * n_waiters as usize + 16));
    }
    for w in 0..n_waiters {
        order.extend(std::iter::repeat_n(ProcId(w), 12));
    }
    let mut sched = Scripted::new(order);
    shm_sim::run(&mut sim, &mut sched, 1_000_000);
    (sim, spec)
}

#[test]
fn flushed_rmr_metrics_match_simulator_totals_exactly() {
    let _guard = OBS_LOCK.lock().unwrap();
    let c = shm_obs::Collector::new();
    shm_obs::install_collector(&c);
    let (sim, _spec) = poll_run(CostModel::cc_default());
    sim.obs_flush("t");
    shm_obs::uninstall();
    let report = shm_obs::MetricsReport::from_snapshot(&c.snapshot());

    let totals = sim.totals();
    assert_eq!(report.total("sim.rmr"), totals.rmrs);
    assert_eq!(report.total("sim.inval"), totals.invalidations);
    assert_eq!(report.scoped("sim.rmr", "t"), totals.rmrs);
    let accesses = sim
        .history()
        .events()
        .filter(|e| matches!(e, shm_sim::Event::Access { .. }))
        .count() as u64;
    assert_eq!(
        report.total("sim.rmr") + report.total("sim.local"),
        accesses,
        "every surviving access is attributed, RMR or local"
    );

    let by_proc = report.by_process("sim.rmr");
    for p in 0..=3u32 {
        assert_eq!(
            by_proc.get(&p).copied().unwrap_or(0),
            sim.proc_stats(ProcId(p)).rmrs,
            "per-process attribution for p{p}"
        );
    }
    let by_loc_sum: u64 = report.by_location("sim.rmr").values().sum();
    assert_eq!(
        by_loc_sum, totals.rmrs,
        "per-location cells partition the total"
    );

    // The whole run was priced under one model, so the per-model view has
    // exactly one cell holding the full total.
    let by_model = report.by_model("sim.rmr");
    let tag = shm_sim::model_tag(CostModel::cc_default());
    assert_eq!(by_model.get(tag).copied(), Some(totals.rmrs));
    assert_eq!(by_model.len(), 1);
}

#[test]
fn audit_rmr_charges_match_independent_repricing() {
    let _guard = OBS_LOCK.lock().unwrap();
    let c = shm_obs::Collector::new();
    shm_obs::install_collector(&c);
    let (sim, spec) = poll_run(CostModel::Dsm);
    let audit = sim.audit_with_threads(&spec, 2);
    shm_obs::uninstall();
    assert!(audit.is_clean(), "{}", audit.to_json());
    let report = shm_obs::MetricsReport::from_snapshot(&c.snapshot());
    let charges = report.by_model("audit.rmr");
    assert_eq!(
        charges.len(),
        4,
        "one charge per standard model: {charges:?}"
    );

    // For the recording's own model the shard deltas must reassemble the
    // simulator's own total.
    assert_eq!(charges.get("dsm").copied(), Some(sim.totals().rmrs));

    // For the cross-priced models the charge must equal what an independent
    // simulation of the identical schedule costs under that model (cost
    // models never change execution, only pricing).
    for model in [
        CostModel::Cc(CcConfig {
            protocol: Protocol::WriteThrough,
            lfcu: false,
            interconnect: Interconnect::IdealDirectory,
        }),
        CostModel::Cc(CcConfig {
            protocol: Protocol::WriteBack,
            lfcu: false,
            interconnect: Interconnect::Bus,
        }),
        CostModel::Cc(CcConfig {
            protocol: Protocol::WriteBack,
            lfcu: true,
            interconnect: Interconnect::IdealDirectory,
        }),
    ] {
        let tag = shm_sim::model_tag(model);
        let (repriced, _) = poll_run(model);
        assert_eq!(
            charges.get(tag).copied(),
            Some(repriced.totals().rmrs),
            "audit charge under {tag}"
        );
    }
}
