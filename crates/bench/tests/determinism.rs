//! Determinism contract of the parallel orchestration: every sweep merges
//! rows by submission index, so the canonical (timing-free) JSON of E1, E2
//! (including the audited adversary) and E8 must be byte-identical at
//! `threads = 1` (the exact serial path) and `threads = 4`.
//!
//! `shm_pool::set_threads` is process-global, so the tests serialize on a
//! mutex and restore the default afterwards.

use bench::{canon, e1_cc_upper, e2_dsm_lower_with, e8_transformation_with, e9_explore};
use std::sync::Mutex;

static POOL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` at a fixed pool size, restoring the auto default afterwards.
fn at_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    shm_pool::set_threads(n);
    let r = f();
    shm_pool::set_threads(0);
    r
}

#[test]
fn e1_canonical_json_is_thread_count_independent() {
    let _guard = POOL_LOCK.lock().unwrap();
    let serial = at_threads(1, || canon::e1_json(&e1_cc_upper(&[4, 16], 10)));
    let parallel = at_threads(4, || canon::e1_json(&e1_cc_upper(&[4, 16], 10)));
    assert_eq!(serial, parallel);
    assert!(serial.contains("\"model\""));
}

#[test]
fn audited_e2_canonical_json_is_thread_count_independent() {
    let _guard = POOL_LOCK.lock().unwrap();
    // Audit on: the audit itself shards across the pool (nested inside the
    // row jobs at threads=4, where it degrades to the serial path; at the
    // top level when rows run serially), so this exercises both nestings.
    let serial = at_threads(1, || canon::e2_json(&e2_dsm_lower_with(&[8, 12], true)));
    let parallel = at_threads(4, || canon::e2_json(&e2_dsm_lower_with(&[8, 12], true)));
    assert_eq!(serial, parallel);
    assert!(
        serial.contains("\"audit_clean\": true"),
        "audited rows present: {serial}"
    );
}

/// The full observability pipeline is part of the determinism contract:
/// with a collector installed, the audited E2 sweep's metrics report (every
/// counter cell, including per-process/per-location RMR attribution), its
/// JSONL event stream, and the canon rows' embedded `obs` blocks must all
/// be byte-identical at `--threads 1` and `--threads 4`.
#[test]
fn e2_metrics_report_is_byte_identical_across_thread_counts() {
    let _guard = POOL_LOCK.lock().unwrap();
    let run = |threads: usize| {
        at_threads(threads, || {
            let c = shm_obs::Collector::new();
            shm_obs::install_collector(&c);
            let rows = e2_dsm_lower_with(&[8, 12], true);
            shm_obs::uninstall();
            let snap = c.snapshot();
            (
                canon::e2_json(&rows),
                shm_obs::MetricsReport::from_snapshot(&snap).to_json(),
                shm_obs::jsonl(&snap, false),
            )
        })
    };
    let (canon_1, metrics_1, jsonl_1) = run(1);
    let (canon_4, metrics_4, jsonl_4) = run(4);
    assert_eq!(
        metrics_1, metrics_4,
        "metrics report must not depend on scheduling"
    );
    assert_eq!(
        jsonl_1, jsonl_4,
        "JSONL stream must not depend on scheduling"
    );
    assert_eq!(canon_1, canon_4);
    assert!(
        canon_1.contains("\"obs\": {\""),
        "canon rows must embed obs blocks when a collector is installed: {canon_1}"
    );
    assert!(metrics_1.contains("\"sim.rmr\""), "{metrics_1}");
    assert!(metrics_1.contains("\"audit.rmr\""), "{metrics_1}");
    assert!(metrics_1.contains("\"part2.rmr.signaler\""), "{metrics_1}");
}

/// E9 nests the explorer's own frontier fan-out inside the row sweep's pool
/// jobs, so this exercises determinism of both layers at once — including
/// the embedded (shrunk) counterexample JSON of the seeded-buggy row.
#[test]
fn e9_canonical_json_is_thread_count_independent() {
    let _guard = POOL_LOCK.lock().unwrap();
    let serial = at_threads(1, || canon::e9_json(&e9_explore(2, 1)));
    let parallel = at_threads(4, || canon::e9_json(&e9_explore(2, 1)));
    assert_eq!(serial, parallel);
    assert!(serial.contains("\"max_signaler_rmrs\""));
    assert!(
        serial.contains("\"algorithm\": \"seeded-buggy\""),
        "negative control row present: {serial}"
    );
    assert!(
        serial.contains("\"schedule\":["),
        "embedded counterexample present: {serial}"
    );
}

#[test]
fn e8_canonical_json_is_thread_count_independent() {
    let _guard = POOL_LOCK.lock().unwrap();
    let serial = at_threads(1, || {
        canon::e8_json(&e8_transformation_with(&[8, 16], false))
    });
    let parallel = at_threads(4, || {
        canon::e8_json(&e8_transformation_with(&[8, 16], false))
    });
    assert_eq!(serial, parallel);
    assert!(serial.contains("\"variant\""));
}
