//! Every experiment's headline *shape* (who wins, how it scales) asserted
//! at test-friendly sizes — the guard that keeps `EXPERIMENTS.md` honest.

use bench::*;

#[test]
fn e2_shapes() {
    let rows = e2_dsm_lower(&[16, 48]);
    let find = |n: usize, name: &str| {
        rows.iter()
            .find(|r| r.n == n && r.algorithm == name)
            .unwrap()
    };
    // broadcast: amortized grows ~linearly with N.
    assert!(find(48, "broadcast").amortized > 2.0 * find(16, "broadcast").amortized);
    // cc-flag: never stabilizes; waiters pay.
    assert!(!find(48, "cc-flag").stabilized);
    // single-waiter: the adversary exceeds its §7 one-waiter contract, which
    // is reported as out-of-contract, not as a safety violation.
    assert!(!find(48, "single-waiter").violation);
    assert!(find(48, "single-waiter").out_of_contract);
    // queue-faa: flat and blocked.
    let q16 = find(16, "queue-faa");
    let q48 = find(48, "queue-faa");
    assert!(q16.blocked > 0 && q48.blocked > 0);
    assert!((q48.amortized - q16.amortized).abs() < 1.0);
}

#[test]
fn e3_shapes() {
    let rows = e3_variants(16, 12);
    for r in &rows {
        if r.model == "dsm" && r.algorithm != "cc-flag" {
            assert!(r.max_waiter_rmrs <= 4, "{r:?}");
            assert!(r.amortized < 8.0, "{r:?}");
        }
        if r.model == "dsm" && r.algorithm == "cc-flag" {
            assert!(r.max_waiter_rmrs >= 12, "{r:?}");
        }
    }
    // Eager fixed-waiters: signaler pays exactly W in DSM.
    let eager = rows
        .iter()
        .find(|r| r.algorithm == "fixed-waiters-eager" && r.model == "dsm")
        .unwrap();
    assert_eq!(eager.signaler_rmrs, 16);
}

#[test]
fn e6_shapes() {
    let rows = e6_mutex(&[4, 16], 3);
    let get = |lock: &str, model: &str, n: usize| {
        rows.iter()
            .find(|r| r.lock == lock && r.model == model && r.n == n)
            .unwrap()
            .rmrs_per_passage
    };
    // MCS: O(1), flat in N, in both models.
    assert!(get("mcs", "dsm", 16) < 2.0 * get("mcs", "dsm", 4).max(5.0));
    assert!(get("mcs", "cc", 16) < 2.0 * get("mcs", "cc", 4).max(5.0));
    // Tournament: CC and DSM agree (within 2x), grows slower than linear.
    let (t_cc, t_dsm) = (get("tournament", "cc", 16), get("tournament", "dsm", 16));
    assert!(
        t_cc < 2.0 * t_dsm && t_dsm < 2.0 * t_cc,
        "{t_cc} vs {t_dsm}"
    );
    assert!(get("tournament", "dsm", 16) < 4.0 * get("tournament", "dsm", 4));
    // Anderson: local-spin in CC only.
    assert!(get("anderson", "dsm", 16) > 3.0 * get("anderson", "cc", 16));
    // TAS: grows with contention.
    assert!(get("tas", "dsm", 16) > 2.0 * get("tas", "dsm", 4));
}

#[test]
fn e8_shapes() {
    let rows = e8_transformation(&[16, 32]);
    let find = |n: usize, v: &str| rows.iter().find(|r| r.n == n && r.variant == v).unwrap();
    assert!(find(32, "cas-list").amortized > 1.4 * find(16, "cas-list").amortized);
    assert!(find(32, "cas-list+rw").amortized > find(16, "cas-list+rw").amortized);
    assert!((find(32, "queue-faa").amortized - find(16, "queue-faa").amortized).abs() < 1.0);
}
