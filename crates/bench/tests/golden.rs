//! Golden byte-equality pins: the canonical (timing-free) JSON of the
//! audited E2 sweep and the E9 exploration must match fixtures committed in
//! `tests/golden/` *byte for byte*. The determinism tests prove the output
//! is thread-count independent; these prove it does not drift across code
//! changes at all — any rewrite of the simulator core, pricing state, or
//! explorer that alters a single byte fails here and must either be a bug
//! or a deliberate, reviewed fixture update.
//!
//! Scaled-down parameters keep the debug-build runtime tractable; the same
//! canon code paths (`canon::e2_json` / `canon::e9_json`) serialize the
//! full-size binaries' `--canon` output.
//!
//! Regenerate after a deliberate output change with:
//! `BLESS_GOLDEN=1 cargo test -p bench --test golden`

use bench::{canon, e2_dsm_lower_with, e9_explore};
use std::path::PathBuf;
use std::sync::Mutex;

static POOL_LOCK: Mutex<()> = Mutex::new(());

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the committed fixture, or rewrites the fixture
/// when `BLESS_GOLDEN` is set.
fn check(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {} (BLESS_GOLDEN=1 to create): {e}", path.display()));
    assert_eq!(
        expected, actual,
        "{name} drifted from the committed fixture; if the change is \
         deliberate, regenerate with BLESS_GOLDEN=1"
    );
}

/// Runs `f` at a fixed pool size, restoring the auto default afterwards.
fn at_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    shm_pool::set_threads(n);
    let r = f();
    shm_pool::set_threads(0);
    r
}

#[test]
fn e2_audited_canon_matches_committed_fixture() {
    let _guard = POOL_LOCK.lock().unwrap();
    let json = at_threads(1, || canon::e2_json(&e2_dsm_lower_with(&[8, 12], true)));
    assert!(json.contains("\"audit_clean\": true"), "{json}");
    check("e2.json", &json);
}

#[test]
fn e9_canon_matches_committed_fixture() {
    let _guard = POOL_LOCK.lock().unwrap();
    let json = at_threads(1, || canon::e9_json(&e9_explore(2, 1)));
    assert!(json.contains("\"max_signaler_rmrs\""), "{json}");
    check("e9.json", &json);
}
