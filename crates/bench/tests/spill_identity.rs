//! Spill byte-identity: the E9 canonical JSON under a forcing memory
//! budget must equal the unbudgeted JSON byte for byte — at `threads = 1`
//! (the exact serial path) and `threads = 4` — once the memory-trajectory
//! fields (`peak_frontier`, `peak_visited_bytes`, `spilled_bytes`) are
//! normalized out. Those three are the *only* keys a budget may move:
//! every verdict, count, maximum, and shrunk counterexample is produced
//! from the identical traversal, whether the visited set and frontier live
//! in RAM or in delta-compressed runs on disk.
//!
//! `shm_pool::set_threads` is process-global, so the tests serialize on a
//! shared lock (same pattern as the determinism suite).

use bench::{canon, e9_explore_with, E9Row};
use std::sync::Mutex;

static POOL_LOCK: Mutex<()> = Mutex::new(());

/// The forcing budget: 8 KiB caps the hot visited tier at its 64-key floor
/// and the frontier ring at its 4-node floor, far below the ~19k states of
/// the single-waiter row, so both spill paths must engage.
const TINY_BUDGET: usize = 8 * 1024;

fn at_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    shm_pool::set_threads(n);
    let r = f();
    shm_pool::set_threads(0);
    r
}

/// Zeroes the memory-trajectory fields so budgeted and unbudgeted rows can
/// be compared on their logical content alone.
fn normalize(mut rows: Vec<E9Row>) -> Vec<E9Row> {
    for r in &mut rows {
        r.peak_frontier = 0;
        r.peak_visited_bytes = 0;
        r.spilled_bytes = 0;
    }
    rows
}

fn identity_at(threads: usize) {
    let unbudgeted = at_threads(threads, || e9_explore_with(2, 1, None));
    let budgeted = at_threads(threads, || e9_explore_with(2, 1, Some(TINY_BUDGET)));
    assert!(
        unbudgeted.iter().all(|r| r.spilled_bytes == 0),
        "unbudgeted run must not spill"
    );
    assert!(
        budgeted.iter().any(|r| r.spilled_bytes > 0),
        "a {TINY_BUDGET}-byte budget must force spilling somewhere in the sweep"
    );
    let single_waiter_dsm = budgeted
        .iter()
        .find(|r| r.algorithm == "single-waiter" && r.model == "dsm")
        .expect("sweep contains single-waiter x dsm");
    assert!(
        single_waiter_dsm.spilled_bytes > 0,
        "the largest row must have spilled"
    );
    assert_eq!(
        canon::e9_json(&normalize(unbudgeted)),
        canon::e9_json(&normalize(budgeted)),
        "threads={threads}: spilling changed a logical field"
    );
}

#[test]
fn e9_canon_is_byte_identical_spilled_vs_not_at_threads_1() {
    let _guard = POOL_LOCK.lock().unwrap();
    identity_at(1);
}

#[test]
fn e9_canon_is_byte_identical_spilled_vs_not_at_threads_4() {
    let _guard = POOL_LOCK.lock().unwrap();
    identity_at(4);
}

/// Cross-thread, cross-budget: the serial unbudgeted run and the threaded
/// budgeted run — opposite corners of the (threads, budget) matrix — agree
/// on every logical byte.
#[test]
fn e9_canon_spilled_threaded_matches_serial_unspilled() {
    let _guard = POOL_LOCK.lock().unwrap();
    let serial = at_threads(1, || e9_explore_with(2, 1, None));
    let threaded = at_threads(4, || e9_explore_with(2, 1, Some(TINY_BUDGET)));
    assert_eq!(
        canon::e9_json(&normalize(serial)),
        canon::e9_json(&normalize(threaded)),
        "opposite corners of the (threads, budget) matrix disagree"
    );
}
