//! End-to-end reproduction of the paper's headline result, across crates:
//! the CC upper bound (§5), the DSM lower bound (§6), the variant bounds
//! (§7), and the primitive boundary (Corollary 6.14).

use cc_dsm::adversary::{run_lower_bound, LowerBoundConfig};
use cc_dsm::shm::{CostModel, ProcId, RoundRobin};
use cc_dsm::signaling::algorithms::{Broadcast, CcFlag, QueueSignaling, SingleWaiter};
use cc_dsm::signaling::{run_scenario, Role, Scenario};

/// §5: the flag algorithm is O(1) RMRs per process in CC for any N.
#[test]
fn cc_upper_bound_holds_across_population_sizes() {
    for n in [2usize, 8, 32, 128] {
        let mut roles = vec![Role::waiter(); n];
        roles.push(Role::signaler());
        let scenario = Scenario {
            algorithm: &CcFlag,
            roles,
            model: CostModel::cc_default(),
        };
        let out = run_scenario(&scenario, &mut RoundRobin::new(), 50_000_000);
        assert!(out.completed);
        assert_eq!(out.polling_spec, Ok(()));
        for i in 0..=n {
            assert!(out.sim.proc_stats(ProcId(i as u32)).rmrs <= 3, "n={n} p{i}");
        }
    }
}

/// §6: the adversary forces amortized cost growing with N on the correct
/// read/write algorithm — the separation itself.
#[test]
fn dsm_lower_bound_amortized_cost_grows() {
    let amortized: Vec<f64> = [16usize, 64, 256]
        .iter()
        .map(|&n| run_lower_bound(&Broadcast, LowerBoundConfig::for_n(n)).worst_amortized())
        .collect();
    assert!(amortized[1] > 3.0 * amortized[0], "{amortized:?}");
    assert!(amortized[2] > 3.0 * amortized[1], "{amortized:?}");
    // Against the same adversary, the CC model cost of the flag algorithm
    // is constant — no RMR-preserving simulation of CC by DSM can exist.
}

/// Corollary 6.14's boundary: FAA (not a comparison primitive) escapes.
#[test]
fn faa_closes_the_gap() {
    let amortized: Vec<f64> = [16usize, 64, 256]
        .iter()
        .map(|&n| run_lower_bound(&QueueSignaling, LowerBoundConfig::for_n(n)).worst_amortized())
        .collect();
    for window in amortized.windows(2) {
        assert!(
            (window[1] - window[0]).abs() < 1.0,
            "queue-faa amortized cost must stay flat: {amortized:?}"
        );
    }
    assert!(amortized.iter().all(|&a| a < 8.0), "{amortized:?}");
}

/// The adversary is an *honest* checker: driving the §7 single-waiter
/// algorithm with many waiters exceeds its declared participation contract
/// (`max_concurrent_waiters() == Some(1)`), so the resulting spec failures
/// are classified as out-of-contract, not as safety violations.
#[test]
fn adversary_classifies_contract_misuse_not_violation() {
    let report = run_lower_bound(&SingleWaiter, LowerBoundConfig::for_n(64));
    assert!(
        report.out_of_contract(),
        "the adversary drives many waiters against a one-waiter contract"
    );
    assert!(
        !report.found_violation(),
        "out-of-contract failures must not be reported as violations"
    );
}

/// The same binary of the same algorithm, priced in both models, shows the
/// asymmetry directly (Figure 1's two architectures).
#[test]
fn same_execution_two_prices() {
    for (model, expect_cheap) in [(CostModel::cc_default(), true), (CostModel::Dsm, false)] {
        let scenario = Scenario {
            algorithm: &CcFlag,
            roles: vec![Role::Waiter {
                max_polls: Some(200),
            }],
            model,
        };
        let out = run_scenario(&scenario, &mut RoundRobin::new(), 1_000_000);
        assert!(out.completed);
        let rmrs = out.sim.proc_stats(ProcId(0)).rmrs;
        if expect_cheap {
            assert!(rmrs <= 1, "CC: {rmrs}");
        } else {
            assert_eq!(rmrs, 200, "DSM: every poll pays");
        }
    }
}
