//! Failure injection: processes crash mid-call at arbitrary points. The
//! signaling safety properties constrain only completed calls, so they must
//! survive any crash pattern (§2 defines crashes; §4's properties are
//! crash-oblivious).

use cc_dsm::shm::{CostModel, ProcId, SeededRandom, Simulator, Status, XorShift64};
use cc_dsm::signaling::algorithms::{Broadcast, CcFlag, FixedSignaler, QueueSignaling};
use cc_dsm::signaling::{check_blocking, check_polling, Role, Scenario, SignalingAlgorithm};

fn crash_run(
    algo: &dyn SignalingAlgorithm,
    n_waiters: usize,
    seed: u64,
    crash_at: Vec<(u32, u64)>, // (pid, after this many global steps)
) -> Simulator {
    let mut roles = vec![
        Role::Waiter {
            max_polls: Some(10)
        };
        n_waiters
    ];
    roles.push(Role::signaler());
    let scenario = Scenario {
        algorithm: algo,
        roles,
        model: CostModel::Dsm,
    };
    let spec = scenario.build();
    let mut sim = Simulator::new(&spec);
    let mut sched = SeededRandom::new(seed);
    let mut steps = 0u64;
    loop {
        for &(pid, at) in &crash_at {
            if steps == at {
                sim.crash(ProcId(pid));
            }
        }
        let Some(pid) = cc_dsm::shm::Scheduler::next(&mut sched, &sim) else {
            break;
        };
        let _ = sim.step(pid);
        steps += 1;
        if steps > 2_000_000 {
            break;
        }
    }
    sim
}

/// Any crash pattern leaves the completed-call history spec-compliant.
/// Seeded deterministic loop (the workspace is dependency-free, so no
/// proptest).
#[test]
fn spec_survives_crashes() {
    let mut rng = XorShift64::new(0xC7A5);
    for _case in 0..64 {
        let seed = rng.below(500);
        let crashes: Vec<(u32, u64)> = (0..rng.below(4))
            .map(|_| (rng.below(5) as u32, rng.below(300)))
            .collect();
        let which = rng.range_usize(0, 4);
        let algos: Vec<Box<dyn SignalingAlgorithm>> = vec![
            Box::new(CcFlag),
            Box::new(Broadcast),
            Box::new(QueueSignaling),
            Box::new(FixedSignaler {
                signaler: ProcId(4),
            }),
        ];
        let sim = crash_run(algos[which].as_ref(), 4, seed, crashes.clone());
        assert_eq!(
            check_polling(sim.history()),
            Ok(()),
            "which={which} crashes={crashes:?}"
        );
        assert_eq!(
            check_blocking(sim.history()),
            Ok(()),
            "which={which} crashes={crashes:?}"
        );
    }
}

/// A crashed signaler can leave waiters waiting forever — that is allowed
/// (terminating progress assumes no crashes) — but never unsafe.
#[test]
fn crashed_signaler_blocks_but_never_lies() {
    let mut roles = vec![Role::waiter(); 3];
    roles.push(Role::signaler());
    let scenario = Scenario {
        algorithm: &QueueSignaling,
        roles,
        model: CostModel::Dsm,
    };
    let spec = scenario.build();
    let mut sim = Simulator::new(&spec);
    // Signaler starts Signal() (writes G) then crashes mid-call.
    let _ = sim.step(ProcId(3)); // invoke + write G
    sim.crash(ProcId(3));
    assert_eq!(sim.status(ProcId(3)), Status::Crashed);
    // Waiters keep polling; those that see G=1 on their first poll return
    // true — legal, because Signal() has *begun*.
    let mut sched = SeededRandom::new(9);
    cc_dsm::shm::run_to_completion(&mut sim, &mut sched, 2_000_000);
    assert_eq!(check_polling(sim.history()), Ok(()));
    // Nobody false-positived before the signal began: the first poll event
    // precedes no Signal invoke.
    let calls = sim.history().calls();
    let sig_invoke = calls
        .iter()
        .find(|c| c.kind == cc_dsm::signaling::kinds::SIGNAL)
        .unwrap();
    for c in calls.iter().filter(|c| c.return_value == Some(1)) {
        assert!(c.returned_at.unwrap() > sig_invoke.invoked_at);
    }
}

/// Crashing a waiter mid-registration must not wedge the signaler.
#[test]
fn crashed_registrant_does_not_wedge_signal() {
    let mut roles = vec![Role::waiter(); 2];
    roles.push(Role::signaler());
    let scenario = Scenario {
        algorithm: &QueueSignaling,
        roles,
        model: CostModel::Dsm,
    };
    let spec = scenario.build();
    let mut sim = Simulator::new(&spec);
    // Waiter 0 claims a ticket (FAA) then crashes before writing its slot.
    let _ = sim.step(ProcId(0)); // invoke + reg read
    let _ = sim.step(ProcId(0)); // branch: FAA applied; slot write pending
    sim.crash(ProcId(0));
    // The signaler must still complete (it skips the NIL slot).
    let mut sched = SeededRandom::new(3);
    cc_dsm::shm::run_to_completion(&mut sim, &mut sched, 2_000_000);
    assert_eq!(
        sim.status(ProcId(2)),
        Status::Terminated,
        "signaler finished"
    );
    assert_eq!(check_polling(sim.history()), Ok(()));
}
