//! Property-style tests: safety of every algorithm under randomized
//! schedules and populations, and determinism/replay invariants of the
//! simulator — the load-bearing assumptions of the adversary. Driven by
//! seeded deterministic loops (the workspace is dependency-free, so no
//! proptest).

use cc_dsm::shm::{CostModel, ProcId, SeededRandom, Simulator, XorShift64};
use cc_dsm::signaling::algorithms::{
    Broadcast, CcFlag, FixedSignaler, FixedWaiters, QueueSignaling,
};
use cc_dsm::signaling::{run_scenario, Role, Scenario, SignalingAlgorithm};

fn gen_role(rng: &mut XorShift64) -> Role {
    // Weights mirror the original proptest distribution: 3/2/1/1/1.
    match rng.below(8) {
        0..=2 => Role::waiter(),
        3 | 4 => Role::Waiter {
            max_polls: Some(rng.range_u64(1, 6)),
        },
        5 => Role::BlockingWaiter,
        6 => Role::Signaler {
            polls_first: rng.below(3),
        },
        _ => Role::Bystander,
    }
}

/// Populations that terminate on their own: if anyone blocks (unbounded
/// waiter / blocking waiter), at least one signaler must exist.
fn gen_population(rng: &mut XorShift64) -> Vec<Role> {
    let len = rng.range_usize(2, 10);
    let mut roles: Vec<Role> = (0..len).map(|_| gen_role(rng)).collect();
    let has_signaler = roles.iter().any(|r| matches!(r, Role::Signaler { .. }));
    let has_blocking = roles
        .iter()
        .any(|r| matches!(r, Role::BlockingWaiter | Role::Waiter { max_polls: None }));
    if has_blocking && !has_signaler {
        roles.push(Role::signaler());
    }
    roles
}

fn algorithms(n: usize) -> Vec<Box<dyn SignalingAlgorithm>> {
    let everyone: Vec<ProcId> = (0..n as u32).map(ProcId).collect();
    vec![
        Box::new(CcFlag),
        Box::new(Broadcast),
        Box::new(QueueSignaling),
        Box::new(FixedSignaler {
            signaler: ProcId(0),
        }),
        Box::new(FixedWaiters::eager(everyone)),
    ]
}

/// Specification 4.1 and the blocking contract hold for every correct
/// algorithm under arbitrary role mixes, seeds, and both cost models.
#[test]
fn safety_under_random_populations() {
    let mut rng = XorShift64::new(0x5AFE);
    for case in 0..48u64 {
        let roles = gen_population(&mut rng);
        let seed = rng.below(1_000);
        let model = if case % 2 == 0 {
            CostModel::Dsm
        } else {
            CostModel::cc_default()
        };
        for algo in algorithms(roles.len()) {
            let scenario = Scenario {
                algorithm: algo.as_ref(),
                roles: roles.clone(),
                model,
            };
            let out = run_scenario(&scenario, &mut SeededRandom::new(seed), 3_000_000);
            assert!(out.completed, "{} stalled", algo.name());
            assert_eq!(out.polling_spec, Ok(()), "{} polling spec", algo.name());
            assert_eq!(out.blocking_spec, Ok(()), "{} blocking spec", algo.name());
        }
    }
}

/// Determinism: identical spec + seed ⇒ identical history and costs.
#[test]
fn runs_are_deterministic() {
    for seed in [0u64, 17, 313, 999] {
        let run = || {
            let mut roles = vec![Role::waiter(); 5];
            roles.push(Role::signaler());
            let scenario = Scenario {
                algorithm: &QueueSignaling,
                roles,
                model: CostModel::Dsm,
            };
            let out = run_scenario(&scenario, &mut SeededRandom::new(seed), 3_000_000);
            (out.sim.schedule().to_vec(), out.sim.totals())
        };
        assert_eq!(run(), run());
    }
}

/// Replay fidelity: replaying a recorded schedule reproduces the exact
/// history (the adversary's soundness bedrock).
#[test]
fn replay_reproduces_history() {
    let mut rng = XorShift64::new(0x9E9);
    for _case in 0..32 {
        let seed = rng.below(1_000);
        let mut roles = vec![Role::waiter(); 4];
        roles.push(Role::Signaler { polls_first: 1 });
        let scenario = Scenario {
            algorithm: &Broadcast,
            roles,
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = Simulator::new(&spec);
        let mut sched = SeededRandom::new(seed);
        cc_dsm::shm::run_to_completion(&mut sim, &mut sched, 3_000_000);
        let replayed = Simulator::replay(&spec, sim.schedule(), &std::collections::BTreeSet::new());
        assert_eq!(replayed.history().to_vec(), sim.history().to_vec());
        assert_eq!(replayed.totals(), sim.totals());
    }
}

/// Erasing a process that took no steps is always projection-transparent.
#[test]
fn erasing_nonparticipant_is_transparent() {
    let mut rng = XorShift64::new(0x7A5);
    for _case in 0..32 {
        let seed = rng.below(500);
        let mut roles = vec![Role::waiter(); 4];
        roles.push(Role::signaler());
        roles.push(Role::Bystander); // p5 takes no memory steps
        let scenario = Scenario {
            algorithm: &Broadcast,
            roles,
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = Simulator::new(&spec);
        cc_dsm::shm::run_to_completion(&mut sim, &mut SeededRandom::new(seed), 3_000_000);
        let erased = std::collections::BTreeSet::from([ProcId(5)]);
        let replayed = Simulator::replay(&spec, sim.schedule(), &erased);
        for i in 0..5u32 {
            assert_eq!(
                replayed.history().projection(ProcId(i)),
                sim.history().projection(ProcId(i))
            );
        }
    }
}
