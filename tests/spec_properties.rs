//! Property-based tests: safety of every algorithm under randomized
//! schedules and populations, and determinism/replay invariants of the
//! simulator — the load-bearing assumptions of the adversary.

use cc_dsm::shm::{CostModel, ProcId, SeededRandom, Simulator};
use cc_dsm::signaling::algorithms::{
    Broadcast, CcFlag, FixedSignaler, FixedWaiters, QueueSignaling,
};
use cc_dsm::signaling::{run_scenario, Role, Scenario, SignalingAlgorithm};
use proptest::prelude::*;

fn arb_role() -> impl Strategy<Value = Role> {
    prop_oneof![
        3 => Just(Role::waiter()),
        2 => (1u64..6).prop_map(|m| Role::Waiter { max_polls: Some(m) }),
        1 => Just(Role::BlockingWaiter),
        1 => (0u64..3).prop_map(|p| Role::Signaler { polls_first: p }),
        1 => Just(Role::Bystander),
    ]
}

/// Populations that terminate on their own: if anyone blocks (unbounded
/// waiter / blocking waiter), at least one signaler must exist.
fn arb_population() -> impl Strategy<Value = Vec<Role>> {
    proptest::collection::vec(arb_role(), 2..10).prop_map(|mut roles| {
        let has_signaler = roles.iter().any(|r| matches!(r, Role::Signaler { .. }));
        let has_blocking = roles.iter().any(|r| {
            matches!(r, Role::BlockingWaiter | Role::Waiter { max_polls: None })
        });
        if has_blocking && !has_signaler {
            roles.push(Role::signaler());
        }
        roles
    })
}

fn algorithms(n: usize) -> Vec<Box<dyn SignalingAlgorithm>> {
    let everyone: Vec<ProcId> = (0..n as u32).map(ProcId).collect();
    vec![
        Box::new(CcFlag),
        Box::new(Broadcast),
        Box::new(QueueSignaling),
        Box::new(FixedSignaler { signaler: ProcId(0) }),
        Box::new(FixedWaiters::eager(everyone)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Specification 4.1 and the blocking contract hold for every correct
    /// algorithm under arbitrary role mixes, seeds, and both cost models.
    #[test]
    fn safety_under_random_populations(roles in arb_population(), seed in 0u64..1_000, dsm in any::<bool>()) {
        let model = if dsm { CostModel::Dsm } else { CostModel::cc_default() };
        for algo in algorithms(roles.len()) {
            let scenario = Scenario { algorithm: algo.as_ref(), roles: roles.clone(), model };
            let out = run_scenario(&scenario, &mut SeededRandom::new(seed), 3_000_000);
            prop_assert!(out.completed, "{} stalled", algo.name());
            prop_assert_eq!(out.polling_spec, Ok(()), "{} polling spec", algo.name());
            prop_assert_eq!(out.blocking_spec, Ok(()), "{} blocking spec", algo.name());
        }
    }

    /// Determinism: identical spec + seed ⇒ identical history and costs.
    #[test]
    fn runs_are_deterministic(seed in 0u64..1_000) {
        let run = || {
            let mut roles = vec![Role::waiter(); 5];
            roles.push(Role::signaler());
            let scenario = Scenario { algorithm: &QueueSignaling, roles, model: CostModel::Dsm };
            let out = run_scenario(&scenario, &mut SeededRandom::new(seed), 3_000_000);
            (out.sim.schedule().to_vec(), out.sim.totals())
        };
        prop_assert_eq!(run(), run());
    }

    /// Replay fidelity: replaying a recorded schedule reproduces the exact
    /// history (the adversary's soundness bedrock).
    #[test]
    fn replay_reproduces_history(seed in 0u64..1_000) {
        let mut roles = vec![Role::waiter(); 4];
        roles.push(Role::Signaler { polls_first: 1 });
        let scenario = Scenario { algorithm: &Broadcast, roles, model: CostModel::Dsm };
        let spec = scenario.build();
        let mut sim = Simulator::new(&spec);
        let mut sched = SeededRandom::new(seed);
        cc_dsm::shm::run_to_completion(&mut sim, &mut sched, 3_000_000);
        let replayed = Simulator::replay(&spec, sim.schedule(), &std::collections::BTreeSet::new());
        prop_assert_eq!(replayed.history().events(), sim.history().events());
        prop_assert_eq!(replayed.totals(), sim.totals());
    }

    /// Erasing a process that took no steps is always projection-transparent.
    #[test]
    fn erasing_nonparticipant_is_transparent(seed in 0u64..500) {
        let mut roles = vec![Role::waiter(); 4];
        roles.push(Role::signaler());
        roles.push(Role::Bystander); // p5 takes no memory steps
        let scenario = Scenario { algorithm: &Broadcast, roles, model: CostModel::Dsm };
        let spec = scenario.build();
        let mut sim = Simulator::new(&spec);
        cc_dsm::shm::run_to_completion(&mut sim, &mut SeededRandom::new(seed), 3_000_000);
        let erased = std::collections::BTreeSet::from([ProcId(5)]);
        let replayed = Simulator::replay(&spec, sim.schedule(), &erased);
        for i in 0..5u32 {
            prop_assert_eq!(
                replayed.history().projection(ProcId(i)),
                sim.history().projection(ProcId(i))
            );
        }
    }
}
