//! # cc-dsm: executable reproduction of Golab's CC/DSM RMR separation
//!
//! Facade crate re-exporting the whole workspace. See the repository
//! `README.md` for the tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured tables.
//!
//! * [`shm`] — the machine model: deterministic shared-memory simulator
//!   with exact RMR accounting under the CC and DSM cost models.
//! * [`signaling`] — the paper's problem (Specification 4.1), its
//!   algorithms, the safety checker, and progress-property measurements.
//! * [`adversary`] — the §6 lower bound as runnable schedule surgery, plus
//!   the Corollary 6.14 read/write transformation.
//! * [`mutex`] — the §3 context: classic locks and group mutual exclusion.
//! * [`primitives`] — registration lists, leader election, splitters.
//!
//! ## Example
//!
//! The separation in six lines — the same algorithm, priced in both models:
//!
//! ```
//! use cc_dsm::shm::{CostModel, ProcId, RoundRobin};
//! use cc_dsm::signaling::{run_scenario, Role, Scenario};
//! use cc_dsm::signaling::algorithms::CcFlag;
//!
//! let run = |model| {
//!     let scenario = Scenario {
//!         algorithm: &CcFlag,
//!         roles: vec![Role::Waiter { max_polls: Some(100) }],
//!         model,
//!     };
//!     let out = run_scenario(&scenario, &mut RoundRobin::new(), 1_000_000);
//!     out.sim.proc_stats(ProcId(0)).rmrs
//! };
//! assert!(run(CostModel::cc_default()) <= 1); // cached busy-wait
//! assert_eq!(run(CostModel::Dsm), 100);       // every poll pays
//! ```

#![warn(missing_docs)]

pub use rmr_adversary as adversary;
pub use shm_mutex as mutex;
pub use shm_primitives as primitives;
pub use shm_sim as shm;
pub use signaling;
